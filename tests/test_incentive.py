"""Unit tests for the incentive formulas (Algorithm 3 and friends)."""

import pytest

from repro.core.incentive import (
    IncentiveParams,
    hardware_incentive,
    software_incentive,
    tag_incentive,
    total_promise,
)
from repro.errors import ConfigurationError
from repro.messages.message import Priority


@pytest.fixture
def params():
    return IncentiveParams(max_incentive=10.0, hardware_constant=0.5,
                           tag_fraction=0.1, tag_cap=3.0)


class TestParams:
    def test_defaults_match_paper(self):
        params = IncentiveParams()
        assert params.relay_threshold == 0.8  # Table 5.1
        assert params.max_rating == 5.0  # experiment D
        assert params.initial_tokens == 200.0  # Table 5.1
        assert params.alpha > 0.5  # Section 3.3 requirement

    @pytest.mark.parametrize(
        "field, value",
        [
            ("max_incentive", 0.0),
            ("tag_fraction", 0.0),
            ("tag_fraction", 1.0),
            ("relay_threshold", 1.5),
            ("alpha", 0.5),
            ("alpha", 1.1),
            ("max_rating", 0.0),
            ("default_rating", 6.0),
            ("initial_tokens", -1.0),
            ("hardware_constant", -0.1),
            ("tag_cap", -1.0),
            ("relay_prepay_fraction", 1.5),
        ],
    )
    def test_invalid_params_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            IncentiveParams(**{field: value})


class TestSoftwareIncentive:
    def base_kwargs(self, **overrides):
        kwargs = dict(
            sender_role=1,
            receiver_role=2,
            priority=Priority.MEDIUM,
            interest_ratio=0.5,
            size=500,
            max_size=1_000,
            quality=0.4,
            max_quality=0.8,
        )
        kwargs.update(overrides)
        return kwargs

    def test_first_branch_promises_maximum(self, params):
        # P_v == 0, senior sender, high priority -> I_m.
        value = software_incentive(
            params, **self.base_kwargs(
                interest_ratio=0.0, priority=Priority.HIGH,
                sender_role=1, receiver_role=2,
            )
        )
        assert value == params.max_incentive

    def test_first_branch_requires_high_priority(self, params):
        value = software_incentive(
            params, **self.base_kwargs(
                interest_ratio=0.0, priority=Priority.MEDIUM,
            )
        )
        assert value == 0.0

    def test_first_branch_requires_senior_sender(self, params):
        value = software_incentive(
            params, **self.base_kwargs(
                interest_ratio=0.0, priority=Priority.HIGH,
                sender_role=2, receiver_role=2,
            )
        )
        assert value == 0.0

    def test_else_branch_formula(self, params):
        # I_s = (1/4*(S/S_m + Q/Q_m) + 1/2*(P_v/(R_u*P_s))) * I_m
        value = software_incentive(params, **self.base_kwargs())
        expected = (0.25 * (0.5 + 0.5) + 0.5 * (0.5 / (1 * 2))) * 10.0
        assert value == pytest.approx(expected)

    def test_never_exceeds_maximum(self, params):
        value = software_incentive(
            params, **self.base_kwargs(
                interest_ratio=1.0, size=1_000, quality=0.8,
                priority=Priority.HIGH, sender_role=1,
            )
        )
        assert value <= params.max_incentive

    def test_bigger_message_earns_more(self, params):
        small = software_incentive(params, **self.base_kwargs(size=100))
        large = software_incentive(params, **self.base_kwargs(size=900))
        assert large > small

    def test_higher_quality_earns_more(self, params):
        low = software_incentive(params, **self.base_kwargs(quality=0.1))
        high = software_incentive(params, **self.base_kwargs(quality=0.8))
        assert high > low

    def test_higher_priority_earns_more(self, params):
        low = software_incentive(
            params, **self.base_kwargs(priority=Priority.LOW))
        high = software_incentive(
            params, **self.base_kwargs(priority=Priority.HIGH))
        assert high > low

    def test_senior_sender_earns_more(self, params):
        junior = software_incentive(params, **self.base_kwargs(sender_role=3))
        senior = software_incentive(params, **self.base_kwargs(sender_role=1))
        assert senior > junior

    @pytest.mark.parametrize("ratio", [0.0, 1e-12, 1e-10, 1e-9])
    def test_near_zero_interest_takes_the_zero_branch(self, params, ratio):
        # Regression: P_v values within the validator's rounding slop of
        # zero (e.g. 1e-12 from a float division) must be treated as "no
        # interest" — before the fix only an exact 0.0 was, so a
        # rounding-noise P_v slipped into the formula branch and earned
        # an epsilon-interest receiver a sizeable data-term promise.
        value = software_incentive(
            params, **self.base_kwargs(
                interest_ratio=ratio, priority=Priority.HIGH,
                sender_role=1, receiver_role=2,
            )
        )
        assert value == params.max_incentive
        value = software_incentive(
            params, **self.base_kwargs(
                interest_ratio=ratio, priority=Priority.MEDIUM,
            )
        )
        assert value == 0.0

    def test_just_above_threshold_takes_the_formula_branch(self, params):
        value = software_incentive(
            params, **self.base_kwargs(interest_ratio=2e-9)
        )
        expected = (0.25 * (0.5 + 0.5) + 0.5 * (2e-9 / (1 * 2))) * 10.0
        assert value == pytest.approx(expected)
        assert value > 0.0

    def test_invalid_inputs_rejected(self, params):
        with pytest.raises(ConfigurationError):
            software_incentive(params, **self.base_kwargs(sender_role=0))
        with pytest.raises(ConfigurationError):
            software_incentive(params, **self.base_kwargs(interest_ratio=1.5))
        with pytest.raises(ConfigurationError):
            software_incentive(params, **self.base_kwargs(size=2_000))
        with pytest.raises(ConfigurationError):
            software_incentive(params, **self.base_kwargs(quality=0.9,
                                                          max_quality=0.8))


class TestHardwareIncentive:
    def test_source_paid_for_transmission_only(self, params):
        value = hardware_incentive(
            params, transmit_power=0.1, received_power=0.05,
            transfer_time=4.0, is_relay=False,
        )
        assert value == pytest.approx(0.5 * 0.1 * 4.0)

    def test_relay_paid_for_both_directions(self, params):
        value = hardware_incentive(
            params, transmit_power=0.1, received_power=0.05,
            transfer_time=4.0, is_relay=True,
        )
        assert value == pytest.approx(0.5 * 0.15 * 4.0)

    def test_invalid_inputs_rejected(self, params):
        with pytest.raises(ConfigurationError):
            hardware_incentive(params, transmit_power=-0.1,
                               received_power=0.0, transfer_time=1.0,
                               is_relay=False)
        with pytest.raises(ConfigurationError):
            hardware_incentive(params, transmit_power=0.1,
                               received_power=0.0, transfer_time=-1.0,
                               is_relay=False)


class TestTagIncentive:
    def test_per_tag_value(self, params):
        assert tag_incentive(params, 1) == pytest.approx(1.0)  # z * I_m
        assert tag_incentive(params, 2) == pytest.approx(2.0)

    def test_cap_applies(self, params):
        assert tag_incentive(params, 10) == params.tag_cap

    def test_zero_tags(self, params):
        assert tag_incentive(params, 0) == 0.0

    def test_negative_rejected(self, params):
        with pytest.raises(ConfigurationError):
            tag_incentive(params, -1)


class TestTotalPromise:
    def test_sums_below_cap(self, params):
        assert total_promise(params, 3.0, 2.0) == 5.0

    def test_caps_at_max_incentive(self, params):
        assert total_promise(params, 8.0, 5.0) == params.max_incentive

    def test_negative_terms_rejected(self, params):
        with pytest.raises(ConfigurationError):
            total_promise(params, -1.0, 0.0)
