"""Determinism golden tests.

``run_scenario`` must be a pure function of ``(config, scheme, seed)``:
the paper's evaluation is only reproducible if every run re-derives the
exact same draws from its :class:`RandomStreams` master seed.  The
golden summary committed under ``tests/golden/`` pins the full metric
dict of one tiny incentive run, so any silent drift — a refactor that
perturbs RNG stream consumption, a change to event ordering, a metrics
accounting tweak — fails loudly here instead of quietly skewing every
figure.

If a change *intentionally* alters simulation behaviour, regenerate the
golden file (see its sibling README note below) and call the change out
in review:

    PYTHONPATH=src python -c "
    import json
    from repro.experiments import ScenarioConfig, run_scenario
    s = run_scenario(ScenarioConfig.tiny(), 'incentive', seed=1).summary()
    json.dump(s, open('tests/golden/run_scenario_tiny_incentive_seed1.json', 'w'),
              indent=2, sort_keys=True)
    "
"""

import json
from pathlib import Path

import pytest

from repro.experiments import ScenarioConfig, run_averaged, run_scenario

GOLDEN_PATH = (
    Path(__file__).parent / "golden" / "run_scenario_tiny_incentive_seed1.json"
)


@pytest.fixture(scope="module")
def tiny():
    return ScenarioConfig.tiny()


class TestGoldenSummary:
    def test_run_scenario_matches_committed_golden(self, tiny):
        summary = run_scenario(tiny, "incentive", seed=1).summary()
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        # Exact float equality on purpose: JSON round-trips float64
        # losslessly, so any difference is real behavioural drift.
        assert summary == golden

    def test_back_to_back_runs_are_identical(self, tiny):
        first = run_scenario(tiny, "incentive", seed=1).summary()
        second = run_scenario(tiny, "incentive", seed=1).summary()
        assert first == second


class TestWorldCoreEquivalence:
    def test_object_core_matches_golden(self, tiny):
        """The legacy core still reproduces the committed golden."""
        summary = run_scenario(
            tiny.replace(world_core="object"), "incentive", seed=1
        ).summary()
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert summary == golden

    def test_soa_core_matches_object_core(self, tiny):
        soa = run_scenario(
            tiny.replace(world_core="soa"), "incentive", seed=1
        ).summary()
        legacy = run_scenario(
            tiny.replace(world_core="object"), "incentive", seed=1
        ).summary()
        assert soa == legacy


class TestShardedDetectionDeterminism:
    """Spatial sharding must not perturb a single draw anywhere."""

    def test_sharded_matches_unsharded(self, tiny):
        base = run_scenario(tiny, "incentive", seed=1).summary()
        sharded = run_scenario(
            tiny.replace(detect_regions=4), "incentive", seed=1
        ).summary()
        assert sharded == base

    def test_parallel_sharded_matches_unsharded(self, tiny):
        base = run_scenario(tiny, "incentive", seed=1).summary()
        fanned = run_scenario(
            tiny.replace(detect_regions=4, detect_workers=2),
            "incentive", seed=1,
        ).summary()
        assert fanned == base

    def test_sharded_matches_golden(self, tiny):
        summary = run_scenario(
            tiny.replace(detect_regions=3), "incentive", seed=1
        ).summary()
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert summary == golden


class TestSerialVsParallel:
    def test_run_averaged_parallel_bit_identical(self, tiny):
        """The issue's acceptance criterion: workers=4 == workers=1."""
        seeds = [1, 2, 3]
        serial = run_averaged(tiny, "incentive", seeds, workers=1)
        parallel = run_averaged(tiny, "incentive", seeds, workers=4)
        assert serial == parallel

    def test_parallel_chitchat_matches_serial(self, tiny):
        seeds = [1, 2]
        serial = run_averaged(tiny, "chitchat", seeds, workers=1)
        parallel = run_averaged(tiny, "chitchat", seeds, workers=2)
        assert serial == parallel
