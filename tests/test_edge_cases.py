"""Edge-case and failure-injection tests across module boundaries."""

import pytest

from tests.helpers import contact, make_message, make_world, trace_of
from repro.core.incentive import IncentiveParams
from repro.core.protocol import IncentiveChitChatRouter
from repro.core.reputation import RatingModel
from repro.errors import BufferError_
from repro.messages.message import Message
from repro.network.buffer import DropPolicy
from repro.network.node import Node
from repro.network.world import World
from repro.routing.chitchat import ChitChatRouter
from repro.routing.epidemic import EpidemicRouter
from repro.sim.engine import Engine


def make_protocol(**overrides):
    params = overrides.pop("params", IncentiveParams(initial_tokens=100.0))
    defaults = dict(
        params=params,
        rating_model=RatingModel(params, noise=0.0, confidence_low=1.0),
    )
    defaults.update(overrides)
    return IncentiveChitChatRouter(**defaults)


class TestWorldEdges:
    def test_link_between_unknown_pair(self):
        world = make_world({0: [], 1: []}, EpidemicRouter())
        assert world.link_between(0, 1) is None

    def test_back_to_back_contacts_at_same_instant(self):
        # A contact ends exactly when the next begins; the down event
        # must be processed first (trace ordering + event priority).
        world = make_world({0: [], 1: ["flood"]}, EpidemicRouter())
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 50.0, 0, 1),
            contact(50.0, 90.0, 0, 1),
        ))
        world.run(100.0)
        assert message.uuid in world.node(1).delivered
        assert world.metrics.transfers_completed == 1

    def test_source_buffer_overflow_still_counts_message(self):
        # A message larger than its own source's buffer dies at birth
        # but still enters the MDR denominator (as in ONE).
        nodes = [
            Node(0, [], buffer_capacity=500),
            Node(1, ["flood"], buffer_capacity=500_000),
        ]
        world = World(Engine(), nodes, EpidemicRouter(), link_speed=1_000.0)
        message = make_message(source=0, size=1_000, keywords=("flood",))
        world.inject_message(message)
        assert world.metrics.intended_pairs() == 1
        assert message.uuid not in world.node(0).buffer

    def test_reject_buffer_policy_loses_relay_copies(self):
        nodes = [
            Node(0, [], buffer_capacity=10_000),
            Node(1, [], buffer_capacity=1_500,
                 drop_policy=DropPolicy.REJECT),
            Node(2, ["flood"], buffer_capacity=10_000),
        ]
        world = World(Engine(), nodes, EpidemicRouter(), link_speed=1_000.0)
        first = make_message(source=0, size=1_000, keywords=("flood",))
        second = make_message(source=0, size=1_000, keywords=("flood",))
        world.inject_message(first)
        world.inject_message(second)
        world.load_contact_trace(trace_of(contact(10.0, 100.0, 0, 1)))
        world.run(200.0)
        # Only one copy fits; REJECT refuses the second outright.
        buffered = [m.uuid in world.node(1).buffer
                    for m in (first, second)]
        assert buffered.count(True) == 1


class TestConcurrentContacts:
    def test_received_message_propagates_to_other_active_links(self):
        # Node 1 is simultaneously connected to 0 (source) and 2
        # (destination); the copy arriving mid-contact must flow on
        # without waiting for a new contact.
        world = make_world({0: [], 1: [], 2: ["flood"]}, EpidemicRouter())
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 200.0, 1, 2),
            contact(50.0, 150.0, 0, 1),
        ))
        world.run(300.0)
        assert message.uuid in world.node(2).delivered

    def test_incentive_forward_onward_pays_through(self):
        router = make_protocol()
        world = make_world({0: [], 1: [], 2: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",),
                               content=("flood",))
        world.inject_message(message)
        # 1 must first qualify as relay: meets 2 to acquire interest,
        # stays connected, then 0 shows up.
        world.load_contact_trace(trace_of(
            contact(10.0, 100.0, 1, 2),
            contact(150.0, 500.0, 1, 2),
            contact(200.0, 400.0, 0, 1),
        ))
        world.run(600.0)
        if message.uuid in world.node(2).delivered:
            # The destination paid whoever delivered.
            assert router.ledger.balance(2) < 100.0


class TestProtocolVariants:
    def test_best_relay_only_false_forwards_to_any_qualifier(self):
        router_any = make_protocol(best_relay_only=False)
        router_best = make_protocol(best_relay_only=True)
        for router in (router_any, router_best):
            world = make_world(
                {0: [], 1: [], 2: [], 3: ["flood"]}, router,
            )
            message = make_message(source=0, size=100, keywords=("flood",),
                                   content=("flood",))
            world.inject_message(message)
            # Both 1 and 2 acquire transient interest from 3, then meet
            # the source simultaneously.
            world.load_contact_trace(trace_of(
                contact(10.0, 200.0, 1, 3),
                contact(10.0, 200.0, 2, 3),
                contact(300.0, 500.0, 0, 1),
                contact(300.0, 500.0, 0, 2),
            ))
            world.run(600.0)
            copies = sum(
                1 for node_id in (1, 2)
                if message.uuid in world.node(node_id).buffer
            )
            if router is router_best:
                best_copies = copies
            else:
                any_copies = copies
        assert any_copies >= best_copies

    def test_destinations_do_not_relay_when_disabled(self):
        router = make_protocol(destinations_also_relay=False)
        world = make_world({0: [], 1: ["flood"], 2: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",),
                               content=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 100.0, 0, 1),
            contact(200.0, 300.0, 1, 2),
        ))
        world.run(400.0)
        assert message.uuid in world.node(1).delivered
        # Node 1 consumed the message without keeping a relay copy.
        assert message.uuid not in world.node(1).buffer
        assert message.uuid not in world.node(2).delivered


class TestChitChatSelection:
    def test_oversized_messages_never_offered(self):
        router = ChitChatRouter()
        world = make_world(
            {0: [], 1: ["flood"]}, router, buffer_capacity=10_000,
        )
        world.node(0).buffer.add(
            make_message(source=0, size=9_000, keywords=("flood",)), now=0.0,
        )
        # Shrink the receiver's buffer below the message size.
        world.node(1).buffer = type(world.node(1).buffer)(1_000)
        selected = router.select_messages(0, 1)
        assert selected == []

    def test_selection_orders_destinations_before_relays(self):
        router = ChitChatRouter()
        world = make_world({0: [], 1: ["flood"], 2: []}, router)
        dest_message = make_message(source=0, size=100, keywords=("flood",))
        world.node(0).buffer.add(dest_message, now=0.0)
        roles = [role for _, role in router.select_messages(0, 1)]
        assert roles == ["destination"]
