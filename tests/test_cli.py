"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_command_parses(self):
        args = build_parser().parse_args(["table"])
        assert args.command == "table"

    def test_figure_command_parses(self):
        args = build_parser().parse_args(["figure", "5.1", "--seeds", "3"])
        assert args.figure == "5.1"
        assert args.seeds == 3

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "incentive"
        assert args.selfish == 0.0

    def test_unknown_scheme_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])


class TestCompare:
    def test_compare_command_parses(self):
        args = build_parser().parse_args(
            ["compare", "incentive", "chitchat", "--seeds", "2"]
        )
        assert args.schemes == ["incentive", "chitchat"]
        assert args.seeds == 2

    def test_compare_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "bogus"])


class TestTrace:
    def test_trace_contacts_writes_jsonl(self, tmp_path, capsys):
        from repro.mobility.trace import ContactTrace

        out = tmp_path / "trace.jsonl"
        code = main([
            "trace", "contacts", str(out),
            "--nodes", "15", "--duration", "600",
        ])
        assert code == 0
        loaded = ContactTrace.load(out)
        assert len(loaded) > 0
        assert "wrote" in capsys.readouterr().out

    def test_trace_contacts_writes_one_format(self, tmp_path):
        from repro.mobility.one_trace import load_one_trace

        out = tmp_path / "conn.txt"
        code = main([
            "trace", "contacts", str(out), "--format", "one",
            "--nodes", "15", "--duration", "600",
        ])
        assert code == 0
        assert len(load_one_trace(out)) > 0

    def test_run_with_trace_then_audit(self, tmp_path, capsys):
        trace_file = tmp_path / "run.jsonl"
        code = main([
            "run", "--nodes", "14", "--duration", "900",
            "--trace", str(trace_file),
        ])
        assert code == 0
        assert trace_file.exists()
        assert "wrote event trace" in capsys.readouterr().out

        code = main(["trace", "audit", str(trace_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "conservation audit passed" in out
        assert "endowment=" in out

    def test_trace_audit_json_output(self, tmp_path, capsys):
        import json

        trace_file = tmp_path / "run.jsonl"
        assert main([
            "run", "--nodes", "14", "--duration", "900",
            "--trace", str(trace_file),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", "audit", str(trace_file), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["conservation_checks"] > 0

    def test_trace_audit_rejects_garbage(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text("not json at all\n")
        code = main(["trace", "audit", str(bogus)])
        assert code == 1
        assert "invalid trace" in capsys.readouterr().err


class TestExecution:
    def test_table_prints_parameters(self, capsys):
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        assert "Table 5.1" in out
        assert "500" in out

    def test_unknown_figure_is_an_error(self, capsys):
        assert main(["figure", "9.9"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestFaults:
    def test_faults_command_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.losses == [0.0, 0.1, 0.2, 0.3]
        assert args.schemes == ["incentive", "chitchat"]
        assert args.retransmissions == 0
        assert not args.churn

    def test_faults_flags_parse(self):
        args = build_parser().parse_args(
            ["faults", "--losses", "0", "0.2", "--churn",
             "--churn-policy", "persist", "--retransmissions", "2",
             "--nodes", "16", "--duration", "900"]
        )
        assert args.losses == [0.0, 0.2]
        assert args.churn and args.churn_policy == "persist"
        assert args.retransmissions == 2
        assert args.nodes == 16
        assert args.duration == 900.0

    def test_bad_churn_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["faults", "--churn-policy", "amnesia"]
            )

    def test_faults_sweep_runs_clean(self, capsys):
        code = main(
            ["faults", "--losses", "0", "0.25", "--retransmissions", "1",
             "--nodes", "14", "--duration", "900"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ledger integrity" in out
        assert "incentive" in out and "chitchat" in out

    def test_faults_sweep_with_churn(self, capsys):
        code = main(
            ["faults", "--losses", "0.2", "--churn",
             "--mean-uptime", "400", "--mean-downtime", "200",
             "--nodes", "14", "--duration", "900"]
        )
        assert code == 0
        assert "ledger integrity" in capsys.readouterr().out


class TestBench:
    def test_bench_command_parses(self):
        args = build_parser().parse_args([
            "bench", "--quick", "--label", "x", "--rounds", "2",
        ])
        assert args.command == "bench"
        assert args.quick is True
        assert args.rounds == 2
        assert args.threshold == 2.0

    def test_bench_writes_report(self, tmp_path, capsys):
        code = main([
            "bench", "--quick", "--rounds", "1", "--no-paper",
            "--out", str(tmp_path), "--label", "t1", "--no-root",
        ])
        assert code == 0
        report_path = tmp_path / "BENCH_t1.json"
        assert report_path.exists()
        import json
        report = json.loads(report_path.read_text())
        assert report["schema"] == 1
        assert "pairs_in_range_500" in report["benchmarks"]
        assert report["machine"]["calibration_seconds"] > 0
        out = capsys.readouterr().out
        assert "pairs_in_range_500" in out

    def test_bench_writes_root_report(self, tmp_path, capsys):
        root = tmp_path / "root"
        out = tmp_path / "out"
        code = main([
            "bench", "--quick", "--rounds", "1", "--no-paper",
            "--out", str(out), "--label", "ci",
            "--root-out", str(root),
        ])
        assert code == 0
        assert (out / "BENCH_ci.json").exists()
        assert (root / "BENCH_ci.json").exists()

    def test_bench_root_report_skipped_when_same_dir(self, tmp_path):
        code = main([
            "bench", "--quick", "--rounds", "1", "--no-paper",
            "--out", str(tmp_path), "--label", "same",
            "--root-out", str(tmp_path),
        ])
        assert code == 0
        assert (tmp_path / "BENCH_same.json").exists()

    def test_bench_passes_against_own_baseline(self, tmp_path, capsys):
        # This exercises the CLI comparison plumbing, not real
        # performance (the scale gate does that), so de-flake it:
        # best-of-3 rounds instead of a single sample, and a loose
        # threshold — on a loaded machine even back-to-back runs of
        # identical code can differ by 2-3x on sub-millisecond benches.
        assert main([
            "bench", "--quick", "--rounds", "3", "--no-paper",
            "--out", str(tmp_path), "--label", "base", "--no-root",
        ]) == 0
        code = main([
            "bench", "--quick", "--rounds", "3", "--no-paper",
            "--out", str(tmp_path), "--label", "again", "--no-root",
            "--baseline", str(tmp_path / "BENCH_base.json"),
            "--threshold", "8.0",
        ])
        assert code == 0
        assert "no benchmark regressed" in capsys.readouterr().out

    def test_bench_flags_regression(self, tmp_path, capsys):
        import json
        assert main([
            "bench", "--quick", "--rounds", "1", "--no-paper",
            "--out", str(tmp_path), "--label", "base", "--no-root",
        ]) == 0
        baseline_path = tmp_path / "BENCH_base.json"
        doctored = json.loads(baseline_path.read_text())
        for record in doctored["benchmarks"].values():
            # Pretend everything was 1000x faster (the gate compares
            # best-of-N, with a mean fallback for old reports).
            record["mean"] /= 1000.0
            record["best"] /= 1000.0
        baseline_path.write_text(json.dumps(doctored))
        code = main([
            "bench", "--quick", "--rounds", "1", "--no-paper",
            "--out", str(tmp_path), "--label", "now", "--no-root",
            "--baseline", str(baseline_path),
        ])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err


class TestSchemesCommand:
    def test_lists_every_scheme(self, capsys):
        from repro.schemes.registry import scheme_names

        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for name in scheme_names():
            assert name in out

    def test_tag_filter_lists_tagged_schemes(self, capsys):
        assert main(["schemes", "--tag", "token"]) == 0
        out = capsys.readouterr().out
        assert "incentive" in out
        assert "minority-game" in out

    def test_unknown_tag_exits_2_with_the_vocabulary(self, capsys):
        from repro.schemes.registry import KNOWN_TAGS

        assert main(["schemes", "--tag", "tokn"]) == 2
        err = capsys.readouterr().err
        assert "unknown scheme tag 'tokn'" in err
        # The full tag vocabulary, so the user can self-correct.
        for tag in KNOWN_TAGS:
            assert tag in err


class TestHetero:
    def test_hetero_command_defaults(self):
        args = build_parser().parse_args(["hetero"])
        assert args.nodes == 120
        assert args.duration == 3600.0
        assert args.seeds == 1
        assert args.schemes == [
            "incentive", "incentive-chitchat-hetero", "minority-game",
        ]
        assert (args.pedestrian, args.vehicular, args.infrastructure) == (
            0.6, 0.3, 0.1
        )

    def test_hetero_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["hetero", "--schemes", "nope"])

    def test_bad_fractions_exit_2(self, capsys):
        assert main([
            "hetero", "--pedestrian", "0.9", "--vehicular", "0.9",
            "--infrastructure", "0.0",
        ]) == 2
        assert "sum to 1" in capsys.readouterr().err

    def test_hetero_sweep_runs_clean(self, capsys):
        code = main([
            "hetero", "--nodes", "24", "--duration", "600",
            "--seeds", "1", "--schemes", "incentive-chitchat-hetero",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "pedestrian" in out
        assert "vehicular" in out
        assert "infrastructure" in out
        assert "conservation audit clean" in out
