"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_command_parses(self):
        args = build_parser().parse_args(["table"])
        assert args.command == "table"

    def test_figure_command_parses(self):
        args = build_parser().parse_args(["figure", "5.1", "--seeds", "3"])
        assert args.figure == "5.1"
        assert args.seeds == 3

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scheme == "incentive"
        assert args.selfish == 0.0

    def test_unknown_scheme_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--scheme", "bogus"])


class TestCompare:
    def test_compare_command_parses(self):
        args = build_parser().parse_args(
            ["compare", "incentive", "chitchat", "--seeds", "2"]
        )
        assert args.schemes == ["incentive", "chitchat"]
        assert args.seeds == 2

    def test_compare_rejects_unknown_scheme(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "bogus"])


class TestTrace:
    def test_trace_command_writes_jsonl(self, tmp_path, capsys):
        from repro.mobility.trace import ContactTrace

        out = tmp_path / "trace.jsonl"
        code = main([
            "trace", str(out), "--nodes", "15", "--duration", "600",
        ])
        assert code == 0
        loaded = ContactTrace.load(out)
        assert len(loaded) > 0
        assert "wrote" in capsys.readouterr().out

    def test_trace_command_writes_one_format(self, tmp_path):
        from repro.mobility.one_trace import load_one_trace

        out = tmp_path / "conn.txt"
        code = main([
            "trace", str(out), "--format", "one",
            "--nodes", "15", "--duration", "600",
        ])
        assert code == 0
        assert len(load_one_trace(out)) > 0


class TestExecution:
    def test_table_prints_parameters(self, capsys):
        assert main(["table"]) == 0
        out = capsys.readouterr().out
        assert "Table 5.1" in out
        assert "500" in out

    def test_unknown_figure_is_an_error(self, capsys):
        assert main(["figure", "9.9"]) == 2
        assert "unknown figure" in capsys.readouterr().err


class TestFaults:
    def test_faults_command_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.losses == [0.0, 0.1, 0.2, 0.3]
        assert args.schemes == ["incentive", "chitchat"]
        assert args.retransmissions == 0
        assert not args.churn

    def test_faults_flags_parse(self):
        args = build_parser().parse_args(
            ["faults", "--losses", "0", "0.2", "--churn",
             "--churn-policy", "persist", "--retransmissions", "2",
             "--nodes", "16", "--duration", "900"]
        )
        assert args.losses == [0.0, 0.2]
        assert args.churn and args.churn_policy == "persist"
        assert args.retransmissions == 2
        assert args.nodes == 16
        assert args.duration == 900.0

    def test_bad_churn_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["faults", "--churn-policy", "amnesia"]
            )

    def test_faults_sweep_runs_clean(self, capsys):
        code = main(
            ["faults", "--losses", "0", "0.25", "--retransmissions", "1",
             "--nodes", "14", "--duration", "900"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "ledger integrity" in out
        assert "incentive" in out and "chitchat" in out

    def test_faults_sweep_with_churn(self, capsys):
        code = main(
            ["faults", "--losses", "0.2", "--churn",
             "--mean-uptime", "400", "--mean-downtime", "200",
             "--nodes", "14", "--duration", "900"]
        )
        assert code == 0
        assert "ledger integrity" in capsys.readouterr().out
