"""Tests for the fault-injection subsystem and protocol robustness.

Covers the three fault processes (link loss/corruption, node churn,
energy blackouts), bounded retransmission, idempotent settlement, and
the token-conservation guarantees the robustness sweep asserts.
"""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import fault_grid_configs, fault_sweep
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.faults import CHURN_POLICIES, FaultConfig, FaultInjector


@pytest.fixture(scope="module")
def tiny():
    return ScenarioConfig.tiny()


@pytest.fixture(scope="module")
def clean_run(tiny):
    """A fault-free incentive run, shared by the equivalence tests."""
    return run_scenario(tiny, "incentive", seed=1)


class TestFaultConfig:
    def test_defaults_are_disabled(self):
        config = FaultConfig()
        assert not config.enabled
        assert not config.lossy
        assert not config.churning
        assert not config.recharging

    def test_loss_enables(self):
        assert FaultConfig(loss_probability=0.1).enabled
        assert FaultConfig(corruption_probability=0.1).lossy

    def test_churn_enables(self):
        config = FaultConfig(mean_uptime=600.0)
        assert config.churning and config.enabled

    def test_recharge_enables(self):
        config = FaultConfig(recharge_interval=60.0, recharge_amount=5.0)
        assert config.recharging and config.enabled

    def test_probability_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(loss_probability=-0.1)
        with pytest.raises(ConfigurationError):
            FaultConfig(corruption_probability=1.1)

    def test_probability_sum_validated(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(loss_probability=0.6, corruption_probability=0.5)

    def test_negative_times_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(mean_uptime=-1.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(recharge_interval=-1.0)

    def test_churn_policy_validated(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(mean_uptime=10.0, churn_policy="amnesia")
        for policy in CHURN_POLICIES:
            FaultConfig(mean_uptime=10.0, churn_policy=policy)

    def test_churn_needs_positive_downtime(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(mean_uptime=10.0, mean_downtime=0.0)


class TestZeroFaultEquivalence:
    """An all-zero FaultConfig must be bit-identical to no faults."""

    def test_summary_identical(self, tiny, clean_run):
        faulted = run_scenario(
            tiny.replace(faults=FaultConfig()), "incentive", seed=1
        )
        assert faulted.summary() == clean_run.summary()

    def test_no_injector_created(self, tiny):
        result = run_scenario(
            tiny.replace(faults=FaultConfig()), "chitchat", seed=1
        )
        # The world drops a disabled config entirely (no injector, no
        # extra RNG streams, no crash events).
        assert result.metrics.fault_summary() == {
            key: 0.0 for key in result.metrics.fault_summary()
        }

    def test_retransmission_off_is_identical(self, tiny, clean_run):
        # A nonzero retry budget with no faults never fires.
        result = run_scenario(
            tiny.replace(max_retransmissions=2), "incentive", seed=1
        )
        assert result.summary() == clean_run.summary()

    def test_finalize_is_noop_when_clean(self, clean_run):
        fault_data = clean_run.fault_summary()
        assert fault_data["escrow_reclaimed"] == 0.0
        assert fault_data["stranded_escrow"] == 0.0


class TestLossInjection:
    @pytest.fixture(scope="class")
    def lossy_run(self, tiny):
        config = tiny.replace(
            faults=FaultConfig(
                loss_probability=0.2, corruption_probability=0.05
            )
        )
        return run_scenario(config, "incentive", seed=1)

    def test_losses_and_corruptions_counted(self, lossy_run):
        fault_data = lossy_run.fault_summary()
        assert fault_data["transfers_lost"] > 0
        assert fault_data["transfers_corrupted"] > 0

    def test_delivery_degrades(self, tiny, clean_run, lossy_run):
        assert lossy_run.mdr < clean_run.mdr

    def test_loss_draws_do_not_perturb_other_streams(self, tiny):
        """Messages are created identically with and without faults."""
        clean = run_scenario(tiny, "chitchat", seed=3)
        lossy = run_scenario(
            tiny.replace(faults=FaultConfig(loss_probability=0.3)),
            "chitchat", seed=3,
        )
        assert (
            lossy.summary()["messages_created"]
            == clean.summary()["messages_created"]
        )

    def test_deterministic_under_faults(self, tiny):
        config = tiny.replace(
            faults=FaultConfig(loss_probability=0.2, mean_uptime=500.0)
        )
        first = run_scenario(config, "incentive", seed=5)
        second = run_scenario(config, "incentive", seed=5)
        assert first.summary() == second.summary()
        assert first.fault_summary() == second.fault_summary()


class TestChurn:
    @pytest.fixture(scope="class")
    def churny_run(self, tiny):
        config = tiny.replace(
            faults=FaultConfig(mean_uptime=400.0, mean_downtime=200.0)
        )
        return run_scenario(config, "incentive", seed=1)

    def test_crashes_and_restarts_counted(self, churny_run):
        fault_data = churny_run.fault_summary()
        assert fault_data["node_crashes"] > 0
        assert fault_data["node_restarts"] > 0
        # Every restart follows a crash.
        assert (
            fault_data["node_restarts"] <= fault_data["node_crashes"]
        )

    def test_offline_sources_skip_creation(self, churny_run):
        assert churny_run.fault_summary()["creations_skipped_offline"] > 0

    def test_policies_differ(self, tiny):
        """Wipe loses buffered relays that persist keeps."""
        results = {}
        for policy in CHURN_POLICIES:
            config = tiny.replace(
                faults=FaultConfig(
                    mean_uptime=300.0, mean_downtime=300.0,
                    churn_policy=policy,
                )
            )
            results[policy] = run_scenario(config, "chitchat", seed=2)
        # Same churn schedule either way (same stream, same draws)...
        assert (
            results["wipe"].fault_summary()["node_crashes"]
            == results["persist"].fault_summary()["node_crashes"]
        )
        # ...but the wiped state changes what travels afterwards.
        assert (
            results["wipe"].summary() != results["persist"].summary()
        )


class TestBlackouts:
    def test_battery_depletion_blacks_out(self, tiny):
        config = tiny.replace(
            battery_capacity=2.0,  # joules: dies after a few transfers
            faults=FaultConfig(
                recharge_interval=300.0, recharge_amount=1.0
            ),
        )
        result = run_scenario(config, "chitchat", seed=1)
        assert result.fault_summary()["blackouts"] > 0

    def test_recharge_requires_battery(self, tiny):
        # A recharge process without batteries is a configured no-op.
        config = tiny.replace(
            faults=FaultConfig(
                recharge_interval=300.0, recharge_amount=1.0
            ),
        )
        result = run_scenario(config, "chitchat", seed=1)
        assert result.fault_summary()["blackouts"] == 0.0


class TestRetransmission:
    def test_retries_fire_and_recover_deliveries(self, tiny):
        faults = FaultConfig(loss_probability=0.3)
        without = run_scenario(
            tiny.replace(faults=faults), "incentive", seed=1
        )
        with_retx = run_scenario(
            tiny.replace(faults=faults, max_retransmissions=2),
            "incentive", seed=1,
        )
        assert with_retx.fault_summary()["retransmissions"] > 0
        assert with_retx.mdr >= without.mdr

    def test_mobility_aborts_never_retried(self, tiny):
        # No loss faults: every abort is mobility/churn, so the retry
        # machinery must stay silent even with a budget.
        config = tiny.replace(
            faults=FaultConfig(mean_uptime=400.0, mean_downtime=200.0),
            max_retransmissions=3,
        )
        result = run_scenario(config, "chitchat", seed=1)
        assert result.fault_summary()["retransmissions"] == 0.0

    def test_budget_validated(self, tiny):
        with pytest.raises(ConfigurationError):
            tiny.replace(max_retransmissions=-1)
        with pytest.raises(ConfigurationError):
            tiny.replace(retransmit_backoff=0.0)


#: Fault mixes the conservation tests sweep (loss, corruption, uptime,
#: policy, retransmissions).
FAULT_MIXES = [
    (0.1, 0.0, 0.0, "wipe", 0),
    (0.3, 0.1, 0.0, "wipe", 2),
    (0.0, 0.0, 300.0, "wipe", 0),
    (0.2, 0.0, 400.0, "wipe", 1),
    (0.2, 0.05, 400.0, "persist", 2),
]


class TestLedgerIntegrityUnderFaults:
    """The tentpole guarantees: conservation, drained escrow, no
    double payment — under every fault mix."""

    @pytest.fixture(scope="class", params=FAULT_MIXES)
    def faulted_run(self, request, tiny):
        loss, corruption, uptime, policy, retx = request.param
        config = tiny.replace(
            faults=FaultConfig(
                loss_probability=loss,
                corruption_probability=corruption,
                mean_uptime=uptime,
                mean_downtime=200.0,
                churn_policy=policy,
            ),
            max_retransmissions=retx,
        )
        return run_scenario(config, "incentive", seed=4)

    def test_supply_conserved(self, faulted_run):
        ledger = faulted_run.router.ledger
        assert ledger.total_supply() == pytest.approx(
            ledger.total_endowment(), abs=1e-6
        )

    def test_escrow_drains_to_zero(self, faulted_run):
        assert faulted_run.router.ledger.escrowed_total() == 0.0

    def test_no_settlement_key_pays_twice(self, faulted_run):
        keyed = [
            t.settlement_key
            for t in faulted_run.router.ledger.transactions
            if t.settlement_key is not None
        ]
        assert len(keyed) == len(set(keyed))
        assert faulted_run.fault_summary()["double_payments"] == 0.0

    def test_no_balance_goes_negative(self, faulted_run):
        balances = faulted_run.router.ledger.balances()
        assert min(balances.values()) >= -1e-9


class TestWipeChurnExercisesIdempotence:
    def test_duplicate_settlements_blocked(self, tiny):
        """Wipe churn lets relays re-receive copies they already paid
        for; the settlement key blocks the second prepay."""
        config = tiny.replace(
            faults=FaultConfig(
                loss_probability=0.15,
                mean_uptime=400.0, mean_downtime=200.0,
                churn_policy="wipe",
            )
        )
        # Seed chosen so the scenario actually produces re-received
        # copies: wiped nodes now also restart their RTSR tables and
        # retry budgets are no longer burned on dark receivers, which
        # changed which encounters re-offer paid-for copies.
        result = run_scenario(config, "incentive", seed=10)
        ledger = result.router.ledger
        assert ledger.duplicate_settlements > 0
        # ...and despite the duplicates, no key paid twice.
        assert result.fault_summary()["double_payments"] == 0.0
        assert ledger.total_supply() == pytest.approx(
            ledger.total_endowment(), abs=1e-6
        )


class TestFaultInjectorUnit:
    def test_is_down_tracks_crashes(self, tiny):
        config = tiny.replace(
            faults=FaultConfig(mean_uptime=100.0, mean_downtime=1e9)
        )
        result = run_scenario(config, "chitchat", seed=1)
        world_faults = result.metrics  # crashes happened, nobody restarts
        assert world_faults.node_crashes > 0
        assert world_faults.node_restarts == 0

    def test_verdict_distribution(self, streams):
        class _World:
            pass

        world = _World()
        world.streams = streams
        world.node_ids = lambda: []
        injector = FaultInjector(
            world, FaultConfig(loss_probability=0.3,
                               corruption_probability=0.2)
        )

        class _Transfer:
            pass

        verdicts = [
            injector.transfer_verdict(_Transfer()) for _ in range(4000)
        ]
        losses = verdicts.count("loss") / len(verdicts)
        corruptions = verdicts.count("corruption") / len(verdicts)
        assert losses == pytest.approx(0.3, abs=0.03)
        assert corruptions == pytest.approx(0.2, abs=0.03)


class TestFaultSweep:
    def test_grid_configs(self, tiny):
        configs = fault_grid_configs(
            tiny, (0.0, 0.5), corruption_fraction=0.2,
            max_retransmissions=1,
        )
        assert configs[0].faults is None  # genuinely fault-free
        assert configs[1].faults.loss_probability == pytest.approx(0.4)
        assert configs[1].faults.corruption_probability == pytest.approx(0.1)
        assert all(c.max_retransmissions == 1 for c in configs)

    def test_bad_levels_rejected(self, tiny):
        with pytest.raises(ConfigurationError):
            fault_grid_configs(tiny, (1.5,))
        with pytest.raises(ConfigurationError):
            fault_grid_configs(tiny, (0.1,), corruption_fraction=2.0)

    @pytest.fixture(scope="class")
    def sweep_records(self, tiny):
        fast = tiny.replace(n_nodes=14, duration=900.0)
        return fault_sweep(
            fast,
            loss_levels=(0.0, 0.25),
            schemes=("incentive", "chitchat"),
            seeds=(1,),
            max_retransmissions=1,
        )

    def test_record_per_grid_point(self, sweep_records):
        assert len(sweep_records) == 4
        assert {r["scheme"] for r in sweep_records} == {
            "incentive", "chitchat"
        }

    def test_integrity_holds_across_grid(self, sweep_records):
        for record in sweep_records:
            assert record["double_payments"] == 0.0
            assert record["stranded_escrow"] == 0.0
            assert record["supply_error"] < 1e-6

    def test_faults_fired_at_nonzero_levels(self, sweep_records):
        lossy = [r for r in sweep_records if r["value"] > 0]
        assert all(r["transfers_lost"] > 0 for r in lossy)
        clean = [r for r in sweep_records if r["value"] == 0]
        assert all(r["transfers_lost"] == 0 for r in clean)

    def test_parallel_sweep_matches_serial(self, tiny, sweep_records,
                                           tmp_path):
        from repro.experiments import TraceCache

        fast = tiny.replace(n_nodes=14, duration=900.0)
        parallel_records = fault_sweep(
            fast,
            loss_levels=(0.0, 0.25),
            schemes=("incentive", "chitchat"),
            seeds=(1,),
            max_retransmissions=1,
            workers=2,
            trace_cache=TraceCache(tmp_path),
        )
        for serial, parallel in zip(sweep_records, parallel_records):
            assert serial["mdr"] == parallel["mdr"]
            assert serial["overhead"] == parallel["overhead"]
            assert (
                serial["duplicate_settlements"]
                == parallel["duplicate_settlements"]
            )
