"""Unit tests for ChitChat's RTSR module and routing rule."""

import pytest

from tests.helpers import contact, make_message, make_world, trace_of
from repro.errors import ConfigurationError
from repro.routing.chitchat import (
    ChitChatRouter,
    InterestRecord,
    InterestTable,
    psi_case,
)


class TestPsiCase:
    def direct(self):
        return InterestRecord(weight=0.6, direct=True, last_contact=0.0)

    def transient(self):
        return InterestRecord(weight=0.3, direct=False, last_contact=0.0)

    def test_all_six_cases(self):
        assert psi_case(self.direct(), self.direct()) == 1
        assert psi_case(self.direct(), self.transient()) == 2
        assert psi_case(self.transient(), self.direct()) == 3
        assert psi_case(self.transient(), self.transient()) == 4
        assert psi_case(None, self.direct()) == 5
        assert psi_case(None, self.transient()) == 6


class TestInterestTable:
    def test_direct_interests_start_at_half(self):
        table = InterestTable(["flood", "fire"])
        assert table.weight("flood") == 0.5
        assert table.is_direct("flood")
        assert table.weight("unknown") == 0.0

    def test_sum_and_average(self):
        table = InterestTable(["flood", "fire"])
        assert table.sum_for(["flood", "fire", "x"]) == pytest.approx(1.0)
        assert table.average_for(["flood", "x"]) == pytest.approx(0.25)
        assert table.average_for([]) == 0.0

    def test_add_direct_promotes_transient(self):
        table = InterestTable([])
        table._records["flood"] = InterestRecord(0.2, False, 0.0)
        table.add_direct("flood", now=1.0)
        assert table.is_direct("flood")
        assert table.weight("flood") == 0.5  # lifted to the floor

    # ---- Algorithm 1 (decay) ----
    def test_decay_direct_moves_toward_half(self):
        # Paper's worked example: w=0.6, beta=2, 5 s elapsed.  The thesis
        # reports 0.55, but its stated formula (W_p-0.5)/(beta*dt)+0.5
        # gives 0.1/10 + 0.5 = 0.51; we implement the formula.
        table = InterestTable(["food-coupon"])
        record = table.record("food-coupon")
        record.weight = 0.6
        record.last_contact = 0.0
        table.decay(5.0, set(), beta=2.0)
        assert table.weight("food-coupon") == pytest.approx(0.51)

    def test_decay_direct_below_half_rises_toward_half(self):
        table = InterestTable(["flood"])
        record = table.record("flood")
        record.weight = 0.3
        record.last_contact = 0.0
        table.decay(5.0, set(), beta=2.0)
        assert 0.3 < table.weight("flood") < 0.5

    def test_decay_transient_shrinks_toward_zero(self):
        table = InterestTable([])
        table._records["flood"] = InterestRecord(0.4, False, 0.0)
        table.decay(5.0, set(), beta=2.0)
        assert table.weight("flood") == pytest.approx(0.04)

    def test_decay_frozen_while_sharing_device_connected(self):
        table = InterestTable(["flood"])
        record = table.record("flood")
        record.weight = 0.9
        record.last_contact = 0.0
        table.decay(100.0, {"flood"}, beta=2.0)
        assert table.weight("flood") == 0.9
        assert record.last_contact == 100.0

    def test_decay_denominator_clamped_to_one(self):
        # beta * dt < 1 must not *amplify* the deviation from 0.5.
        table = InterestTable(["flood"])
        record = table.record("flood")
        record.weight = 0.9
        record.last_contact = 0.0
        table.decay(0.01, set(), beta=2.0)
        assert table.weight("flood") <= 0.9

    def test_decay_prunes_dead_transients(self):
        table = InterestTable([])
        table._records["flood"] = InterestRecord(1e-4, False, 0.0)
        table.decay(100.0, set(), beta=2.0)
        assert "flood" not in table

    def test_decay_never_prunes_direct_interests(self):
        table = InterestTable(["flood"])
        table.decay(1e9, set(), beta=2.0)
        assert "flood" in table
        assert table.weight("flood") == pytest.approx(0.5)

    def test_invalid_beta_rejected(self):
        with pytest.raises(ConfigurationError):
            InterestTable(["x"]).decay(1.0, set(), beta=0.0)

    # ---- Algorithm 2 (growth) ----
    def test_growth_acquires_transient_interest(self):
        mine = InterestTable([])
        peer = InterestTable(["flood"])
        mine.grow_from(peer, now=10.0, elapsed=100.0,
                       growth_scale=0.01, elapsed_cap=600.0)
        assert "flood" in mine
        assert not mine.is_direct("flood")
        # delta = 0.01 * 0.5 * 100 / psi(None, direct)=5 -> 0.1
        assert mine.weight("flood") == pytest.approx(0.1)

    def test_growth_boosts_shared_direct_interest_fastest(self):
        mine = InterestTable(["flood"])
        peer = InterestTable(["flood"])
        mine.grow_from(peer, now=10.0, elapsed=100.0,
                       growth_scale=0.01, elapsed_cap=600.0)
        # delta = 0.01 * 0.5 * 100 / 1 = 0.5 -> 1.0 capped
        assert mine.weight("flood") == pytest.approx(1.0)

    def test_growth_capped_at_one(self):
        mine = InterestTable(["flood"])
        peer = InterestTable(["flood"])
        mine.grow_from(peer, now=0.0, elapsed=1e9,
                       growth_scale=1.0, elapsed_cap=1e9)
        assert mine.weight("flood") == 1.0

    def test_growth_elapsed_cap_applies(self):
        mine = InterestTable([])
        peer = InterestTable(["flood"])
        mine.grow_from(peer, now=0.0, elapsed=1e6,
                       growth_scale=0.01, elapsed_cap=100.0)
        capped = mine.weight("flood")
        assert capped == pytest.approx(0.01 * 0.5 * 100.0 / 5)

    def test_negative_elapsed_rejected(self):
        with pytest.raises(ConfigurationError):
            InterestTable([]).grow_from(
                InterestTable(["x"]), now=0.0, elapsed=-1.0,
                growth_scale=0.01, elapsed_cap=10.0,
            )


class TestRouterClassification:
    def make(self):
        router = ChitChatRouter()
        world = make_world(
            {0: ["flood"], 1: ["fire"], 2: []}, router,
        )
        return router, world

    def test_direct_interest_means_destination(self):
        router, world = self.make()
        message = make_message(keywords=("flood",))
        assert router.classify(0, message) == "destination"
        assert router.classify(1, message) == "relay"
        assert router.classify(2, message) == "relay"

    def test_routing_rule_s_v_greater_than_s_u(self):
        router, world = self.make()
        message = make_message(keywords=("fire",))
        # Node 1 has direct interest (0.5), node 2 has nothing.
        assert router.wants_as_relay(2, 1, message)
        assert not router.wants_as_relay(1, 2, message)
        assert not router.wants_as_relay(1, 1, message)

    def test_interest_sum_matches_table(self):
        router, world = self.make()
        message = make_message(keywords=("flood", "fire"))
        assert router.interest_sum(0, message) == pytest.approx(0.5)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            ChitChatRouter(beta=0.0)
        with pytest.raises(ConfigurationError):
            ChitChatRouter(growth_scale=0.0)
        with pytest.raises(ConfigurationError):
            ChitChatRouter(growth_elapsed_cap=0.0)


class TestRouterEndToEnd:
    def test_direct_delivery_over_one_contact(self):
        router = ChitChatRouter()
        world = make_world({0: [], 1: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",),
                               content=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 100.0, 0, 1)))
        world.run(200.0)
        assert message.uuid in world.node(1).delivered
        assert world.metrics.delivered_pairs() == 1
        assert world.metrics.message_delivery_ratio() == 1.0

    def test_two_hop_delivery_via_transient_relay(self):
        router = ChitChatRouter()
        world = make_world({0: [], 1: [], 2: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",),
                               content=("flood",))
        world.inject_message(message)
        # 1 meets the destination 2 first (acquiring a transient interest
        # in "flood"), then meets the source 0 and relays, then meets 2
        # again to deliver.
        world.load_contact_trace(trace_of(
            contact(10.0, 200.0, 1, 2),
            contact(300.0, 500.0, 0, 1),
            contact(600.0, 800.0, 1, 2),
        ))
        world.run(1000.0)
        assert message.uuid in world.node(2).delivered

    def test_short_contact_aborts_transfer(self):
        router = ChitChatRouter()
        # 1000 B at 1000 B/s needs 1 s; the contact lasts 0.4 s.
        world = make_world({0: [], 1: ["flood"]}, router)
        message = make_message(source=0, size=1000, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 10.4, 0, 1)))
        world.run(100.0)
        assert message.uuid not in world.node(1).delivered
        assert world.metrics.transfers_aborted == 1

    def test_no_duplicate_deliveries(self):
        router = ChitChatRouter()
        world = make_world({0: [], 1: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 50.0, 0, 1),
            contact(100.0, 150.0, 0, 1),
        ))
        world.run(200.0)
        assert world.metrics.delivered_pairs() == 1
        assert world.metrics.transfers_completed == 1

    def test_growth_runs_at_contact_end(self):
        router = ChitChatRouter()
        world = make_world({0: ["flood"], 1: []}, router)
        world.load_contact_trace(trace_of(contact(10.0, 200.0, 0, 1)))
        world.run(300.0)
        # Node 1 acquired a transient interest in "flood" from node 0.
        assert router.table(1).weight("flood") > 0.0
        assert not router.table(1).is_direct("flood")


class TestVersionTokenAndCaches:
    """The version counter drives cache invalidation for the keyword
    view and the router's memoised interest sums; every mutation path
    must bump it."""

    def test_every_mutation_bumps_version(self):
        table = InterestTable(["flood"])
        seen = {table.version}

        table.add_direct("fire", now=1.0)
        assert table.version not in seen
        seen.add(table.version)

        table.decay(10.0, set(), beta=2.0)
        assert table.version not in seen
        seen.add(table.version)

        table.grow_from(InterestTable(["smoke"]), now=20.0, elapsed=60.0,
                        growth_scale=0.01, elapsed_cap=600.0)
        assert table.version not in seen

    def test_keywords_view_tracks_mutations(self):
        table = InterestTable(["flood"])
        assert table.keywords == frozenset({"flood"})
        # Cached: identical object while the table is untouched.
        assert table.keywords is table.keywords
        table.add_direct("fire", now=0.0)
        assert table.keywords == frozenset({"flood", "fire"})
        table._records["flood"].weight = 1e-9
        table._records["flood"].direct = False
        table.decay(1000.0, set(), beta=2.0)  # prunes the dead transient
        assert table.keywords == frozenset({"fire"})

    def test_interest_sum_cache_sees_decay(self):
        router = ChitChatRouter()
        world = make_world({0: []}, router)
        # A transient interest (directs are floored at their initial
        # weight), so decay visibly shrinks the sum.
        table = router.table(0)
        table._records["flood"] = InterestRecord(0.5, False, 0.0)
        table.version += 1
        message = make_message(keywords=("flood",))
        before = router.interest_sum(0, message)
        assert before == pytest.approx(0.5)
        router.table(0).decay(500.0, set(), beta=2.0)
        after = router.interest_sum(0, message)
        assert after < before
        assert after == pytest.approx(router.table(0).sum_for(
            message.keywords
        ))

    def test_interest_sum_cache_sees_growth_and_new_annotations(self):
        router = ChitChatRouter()
        world = make_world({0: [], 1: ["flood", "fire"]}, router)
        message = make_message(keywords=("flood",))
        assert router.interest_sum(0, message) == 0.0
        router.table(0).grow_from(
            router.table(1), now=10.0, elapsed=100.0,
            growth_scale=0.01, elapsed_cap=600.0,
        )
        grown = router.interest_sum(0, message)
        assert grown > 0.0
        # Annotating the message changes its keyword sequence, which
        # must miss the memo and re-sum.
        message.annotate("fire", added_by=2, added_at=20.0)
        assert router.interest_sum(0, message) == pytest.approx(2 * grown)

    def test_grow_from_weights_matches_grow_from(self):
        import copy
        peer = InterestTable(["flood", "fire"])
        peer._records["smoke"] = InterestRecord(0.3, False, 0.0)
        peer._records["zeroed"] = InterestRecord(0.0, False, 0.0)
        mine_a = InterestTable(["fire"])
        mine_a._records["smoke"] = InterestRecord(0.2, False, 0.0)
        mine_b = copy.deepcopy(mine_a)

        mine_a.grow_from(peer, now=5.0, elapsed=120.0,
                         growth_scale=0.01, elapsed_cap=600.0)
        mine_b.grow_from_weights(
            peer.snapshot_weights(), now=5.0, elapsed=120.0,
            growth_scale=0.01, elapsed_cap=600.0,
        )
        for keyword in mine_a.keywords | mine_b.keywords:
            assert mine_a.weight(keyword) == mine_b.weight(keyword)
        assert "zeroed" not in mine_a

    def test_snapshot_weights_skips_zero_weights(self):
        table = InterestTable(["flood"])
        table._records["dead"] = InterestRecord(0.0, False, 0.0)
        assert table.snapshot_weights() == [("flood", 0.5, True)]


class TestScalarVectorParity:
    """The small-table scalar fast paths must match the ufunc paths.

    ``_SCALAR_ROWS_MAX`` is a pure speed knob: every row sees the
    identical IEEE expression on either side of it, so running the same
    history entirely through the scalar paths and entirely through the
    vector paths must land on bit-identical table state.
    """

    def _seasoned(self):
        import numpy as np  # noqa: F401 - keeps helper self-contained

        table = InterestTable(["flood", "fire", "medical"], created_at=0.0)
        snapshots = [
            [("water", 0.7, True), ("food", 0.31, False),
             ("flood", 0.9, True)],
            [("shelter", 0.001, False), ("fire", 0.44, False),
             ("rescue", 0.62, True)],
            [("water", 0.2, False), ("power", 0.015, False)],
        ]
        now = 0.0
        for i, snap in enumerate(snapshots):
            now = 10.0 * (i + 1)
            table.decay(now, {"flood"} if i % 2 else set(), beta=0.05)
            table.grow_from_weights(
                snap, now, 7.5 + i,
                growth_scale=0.8 if i != 1 else 20.0,  # i=1 hits the clamp
                elapsed_cap=60.0,
            )
        return table, now

    def _state(self, table):
        return (
            table._weight.tobytes(), table._present.tobytes(),
            table._direct.tobytes(), table._last.tobytes(),
            table.version, table._members_version,
        )

    def test_decay_and_growth_paths_bitwise_equal(self, monkeypatch):
        from repro.routing import chitchat as chitchat_module

        states = []
        for forced_max in (10_000, -1):  # scalar-everywhere, vector-everywhere
            monkeypatch.setattr(
                chitchat_module, "_SCALAR_ROWS_MAX", forced_max
            )
            table, now = self._seasoned()
            # beta=5.0 over 13s pushes "power" (w=0.015) below the prune
            # threshold, so the dead-row branch is exercised on both paths.
            table.decay(now + 13.0, {"fire", "water"}, beta=5.0)
            states.append(self._state(table))
        assert states[0] == states[1]

    def test_batch_fill_matches_per_key_queries(self):
        import numpy as np

        table, _ = self._seasoned()
        capacity = table._present.size
        id_of = table._index.id_of
        queries = [
            ("warm", np.asarray(
                [id_of("flood"), id_of("water")], dtype=np.int64)),
            ("empty", np.empty(0, dtype=np.int64)),
            ("out-of-range", np.asarray(
                [capacity + 5, capacity + 9], dtype=np.int64)),
            ("mixed", np.asarray(
                [id_of("food"), capacity + 2, id_of("rescue")],
                dtype=np.int64)),
        ]
        misses = [((key,), ids) for key, ids in queries]
        sums, roles = {}, {}
        table.batch_fill(misses, sums, roles)
        for (key,), ids in misses:
            expected_sum = table.sum_for_ids(ids)
            expected_role = (
                "destination" if table.any_direct_ids(ids) else "relay"
            )
            assert sums[(key,)] == expected_sum
            assert type(sums[(key,)]) is type(expected_sum)
            assert roles[(key,)] == expected_role
