"""Unit tests for ONE-simulator trace import/export."""

import pytest

from repro.errors import MobilityError
from repro.mobility.one_trace import load_one_trace, save_one_trace
from repro.mobility.trace import Contact, ContactTrace


class TestLoad:
    def test_basic_round(self, tmp_path):
        path = tmp_path / "conn.txt"
        path.write_text(
            "10.0 CONN 0 1 up\n"
            "25.0 CONN 0 1 down\n"
            "30.0 CONN 2 1 up\n"
            "40.0 CONN 2 1 down\n"
        )
        trace = load_one_trace(path)
        assert [(c.start, c.end, c.pair) for c in trace] == [
            (10.0, 25.0, (0, 1)), (30.0, 40.0, (1, 2)),
        ]

    def test_prefixed_host_names(self, tmp_path):
        path = tmp_path / "conn.txt"
        path.write_text("5.0 CONN p3 p7 up\n9.0 CONN p3 p7 down\n")
        trace = load_one_trace(path)
        assert trace[0].pair == (3, 7)

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "conn.txt"
        path.write_text(
            "# ConnectivityONEReport\n\n"
            "1.0 CONN 0 1 up\n2.0 CONN 0 1 down\n"
        )
        assert len(load_one_trace(path)) == 1

    def test_unterminated_connection_closed_at_end_time(self, tmp_path):
        path = tmp_path / "conn.txt"
        path.write_text("10.0 CONN 0 1 up\n")
        trace = load_one_trace(path, end_time=60.0)
        assert trace[0].end == 60.0

    def test_unterminated_defaults_to_last_event_time(self, tmp_path):
        path = tmp_path / "conn.txt"
        path.write_text(
            "10.0 CONN 0 1 up\n"
            "50.0 CONN 2 3 up\n"
            "55.0 CONN 2 3 down\n"
        )
        trace = load_one_trace(path)
        pair_01 = [c for c in trace if c.pair == (0, 1)]
        assert pair_01[0].end == 55.0

    def test_down_without_up_rejected(self, tmp_path):
        path = tmp_path / "conn.txt"
        path.write_text("10.0 CONN 0 1 down\n")
        with pytest.raises(MobilityError, match="'down' without 'up'"):
            load_one_trace(path)

    def test_duplicate_up_rejected(self, tmp_path):
        path = tmp_path / "conn.txt"
        path.write_text("10.0 CONN 0 1 up\n20.0 CONN 1 0 up\n")
        with pytest.raises(MobilityError, match="duplicate 'up'"):
            load_one_trace(path)

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "conn.txt"
        path.write_text("banana\n")
        with pytest.raises(MobilityError, match="conn.txt:1"):
            load_one_trace(path)

    def test_bad_timestamp_rejected(self, tmp_path):
        path = tmp_path / "conn.txt"
        path.write_text("soon CONN 0 1 up\n")
        with pytest.raises(MobilityError, match="bad timestamp"):
            load_one_trace(path)


class TestSaveRoundTrip:
    def test_save_then_load_is_identity(self, tmp_path):
        original = ContactTrace([
            Contact(1.5, 9.25, 0, 1),
            Contact(3.0, 12.0, 1, 2),
        ])
        path = tmp_path / "conn.txt"
        save_one_trace(original, path)
        loaded = load_one_trace(path)
        assert [(c.start, c.end, c.pair) for c in loaded] == [
            (c.start, c.end, c.pair) for c in original
        ]

    def test_saved_format_is_one_compatible(self, tmp_path):
        trace = ContactTrace([Contact(1.0, 2.0, 0, 1)])
        path = tmp_path / "conn.txt"
        save_one_trace(trace, path)
        lines = path.read_text().splitlines()
        assert lines[0] == "1.000 CONN 0 1 up"
        assert lines[1] == "2.000 CONN 0 1 down"
