"""Unit tests for the REPSYS-style Bayesian reputation system."""

import pytest

from repro.core.bayesian_reputation import (
    BayesianReputationSystem,
    BetaBelief,
)
from repro.core.incentive import IncentiveParams
from repro.errors import ConfigurationError


@pytest.fixture
def params():
    return IncentiveParams(max_rating=5.0, alpha=0.7)


@pytest.fixture
def system(params):
    return BayesianReputationSystem(params)


class TestBetaBelief:
    def test_prior_is_uniform(self):
        belief = BetaBelief()
        assert belief.mean == pytest.approx(0.5)
        assert belief.evidence == 0.0

    def test_observe_successes_raises_mean(self):
        belief = BetaBelief()
        for _ in range(10):
            belief.observe(1.0)
        assert belief.mean > 0.9

    def test_observe_failures_lowers_mean(self):
        belief = BetaBelief()
        for _ in range(10):
            belief.observe(0.0)
        assert belief.mean < 0.1

    def test_fade_moves_toward_prior(self):
        belief = BetaBelief()
        for _ in range(10):
            belief.observe(1.0)
        strong = belief.mean
        belief.fade(0.1)
        assert 0.5 < belief.mean < strong


class TestFirstHandEvidence:
    def test_unknown_subject_scores_at_prior(self, system, params):
        # Beta(1,1) mean 0.5 -> 2.5 on the 0..5 scale.
        assert system.book(0).score(9) == pytest.approx(2.5)
        assert not system.book(0).has_opinion(9)

    def test_good_ratings_raise_score(self, system):
        book = system.book(0)
        for _ in range(10):
            book.rate_message(9, 5.0)
        assert book.score(9) > 4.0
        assert book.has_opinion(9)

    def test_bad_ratings_lower_score(self, system):
        book = system.book(0)
        for _ in range(10):
            book.rate_message(9, 0.0)
        assert book.score(9) < 1.0

    def test_fading_lets_recent_evidence_dominate(self, params):
        system = BayesianReputationSystem(params, fading=0.5)
        book = system.book(0)
        for _ in range(10):
            book.rate_message(9, 5.0)
        for _ in range(3):
            book.rate_message(9, 0.0)
        # With strong fading three bad reports outweigh ten old good ones.
        assert book.score(9) < 2.5

    def test_out_of_range_rating_rejected(self, system):
        with pytest.raises(ConfigurationError):
            system.book(0).rate_message(9, 5.5)


class TestDeviationTest:
    def test_compatible_report_accepted(self, system):
        book = system.book(0)
        book.rate_message(9, 4.0)  # belief mean 0.6 (Beta(1.8, 1.2))
        before = book.score(9)
        book.merge_opinion(9, 4.5)  # heard mean 0.9: within 0.35 deviation
        assert book.score(9) > before
        assert book.rejected_reports == 0

    def test_wild_report_rejected(self, system):
        book = system.book(0)
        for _ in range(5):
            book.rate_message(9, 5.0)
        before = book.score(9)
        book.merge_opinion(9, 0.0)  # false accusation
        assert book.score(9) == pytest.approx(before)
        assert book.rejected_reports == 1

    def test_reports_accepted_when_no_own_evidence(self, system):
        book = system.book(0)
        book.merge_opinion(9, 0.5)
        assert book.score(9) < 2.5

    def test_self_reports_ignored(self, system):
        book = system.book(0)
        book.merge_opinion(0, 5.0)
        assert not book.has_opinion(0)


class TestSystem:
    def test_exchange_spreads_evidence(self, system):
        system.book(1).rate_message(9, 0.0)
        system.exchange(1, 2)
        assert system.book(2).score(9) < 2.5

    def test_exchange_skips_interlocutors(self, system):
        system.book(1).rate_message(2, 0.0)
        system.exchange(1, 2)
        assert not system.book(2).has_opinion(2)

    def test_average_score_of(self, system, params):
        system.book(1).rate_message(9, 0.0)
        assert system.average_score_of(9, [1, 2]) < 2.5
        assert system.average_score_of(7, [1, 2]) == pytest.approx(2.5)

    def test_forget_subject_resets_to_prior(self, system):
        system.book(1).rate_message(9, 0.0)
        assert system.forget_subject(9) == 1
        assert system.book(1).score(9) == pytest.approx(2.5)

    def test_classification_threshold(self, system):
        system.book(1).rate_message(9, 0.0)
        system.book(1).rate_message(9, 0.0)
        assert system.classify_misbehaving(1, 9, threshold=0.4)
        assert not system.classify_misbehaving(1, 5, threshold=0.4)

    def test_invalid_construction(self, params):
        with pytest.raises(ConfigurationError):
            BayesianReputationSystem(params, fading=0.0)
        with pytest.raises(ConfigurationError):
            BayesianReputationSystem(params, deviation_threshold=1.5)
        with pytest.raises(ConfigurationError):
            BayesianReputationSystem(params, merge_weight=-1.0)


class TestProtocolIntegration:
    def test_incentive_bayesian_scheme_runs(self):
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import run_scenario

        config = ScenarioConfig.tiny(malicious_fraction=0.2)
        result = run_scenario(
            config, "incentive-bayesian", seed=1,
            sample_ratings=True, rating_sample_interval=300.0,
        )
        assert isinstance(result.router.reputation,
                          BayesianReputationSystem)
        samples = result.metrics.rating_samples
        start = sum(samples[0][1].values()) / len(samples[0][1])
        end = sum(samples[-1][1].values()) / len(samples[-1][1])
        # Malicious nodes are exposed under the Bayesian model too.
        assert end < start
