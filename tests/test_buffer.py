"""Unit tests for the finite message buffer."""

import pytest

from tests.helpers import make_message
from repro.errors import BufferError_, ConfigurationError
from repro.messages.message import Priority
from repro.network.buffer import DropPolicy, MessageBuffer


class TestBasics:
    def test_add_and_get(self):
        buffer = MessageBuffer(10_000)
        message = make_message(size=100)
        assert buffer.add(message, now=1.0) == []
        assert buffer.get(message.uuid) is message
        assert message.uuid in buffer
        assert len(buffer) == 1

    def test_used_and_free_track_bytes(self):
        buffer = MessageBuffer(1_000)
        buffer.add(make_message(size=300), now=0.0)
        buffer.add(make_message(size=200), now=0.0)
        assert buffer.used == 500
        assert buffer.free == 500

    def test_remove_returns_message_and_frees_space(self):
        buffer = MessageBuffer(1_000)
        message = make_message(size=400)
        buffer.add(message, now=0.0)
        assert buffer.remove(message.uuid) is message
        assert buffer.used == 0
        assert message.uuid not in buffer

    def test_remove_missing_raises(self):
        with pytest.raises(BufferError_):
            MessageBuffer(100).remove("nope")

    def test_discard_missing_returns_none(self):
        assert MessageBuffer(100).discard("nope") is None

    def test_duplicate_add_rejected(self):
        buffer = MessageBuffer(1_000)
        message = make_message(size=10)
        buffer.add(message, now=0.0)
        with pytest.raises(BufferError_):
            buffer.add(message, now=1.0)

    def test_oversized_message_rejected_and_counted(self):
        buffer = MessageBuffer(100)
        with pytest.raises(BufferError_):
            buffer.add(make_message(size=101), now=0.0)
        assert buffer.rejections == 1

    def test_messages_in_arrival_order(self):
        buffer = MessageBuffer(1_000)
        first = make_message(size=10)
        second = make_message(size=10)
        buffer.add(first, now=0.0)
        buffer.add(second, now=1.0)
        assert buffer.messages() == [first, second]

    def test_arrival_time_recorded(self):
        buffer = MessageBuffer(1_000)
        message = make_message(size=10)
        buffer.add(message, now=3.5)
        assert buffer.arrival_time(message.uuid) == 3.5
        with pytest.raises(BufferError_):
            buffer.arrival_time("nope")

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageBuffer(0)


class TestDropOldest:
    def test_evicts_oldest_first(self):
        buffer = MessageBuffer(1_000, DropPolicy.DROP_OLDEST)
        oldest = make_message(size=400)
        newer = make_message(size=400)
        buffer.add(oldest, now=0.0)
        buffer.add(newer, now=1.0)
        incoming = make_message(size=300)
        evicted = buffer.add(incoming, now=2.0)
        assert evicted == [oldest]
        assert newer.uuid in buffer
        assert incoming.uuid in buffer
        assert buffer.drops == 1

    def test_evicts_until_enough_room(self):
        buffer = MessageBuffer(1_000, DropPolicy.DROP_OLDEST)
        small = [make_message(size=250) for _ in range(4)]
        for index, message in enumerate(small):
            buffer.add(message, now=float(index))
        evicted = buffer.add(make_message(size=600), now=10.0)
        assert evicted == small[:3]


class TestDropLowestPriority:
    def test_evicts_low_priority_first(self):
        buffer = MessageBuffer(1_000, DropPolicy.DROP_LOWEST_PRIORITY)
        high = make_message(size=400, priority=Priority.HIGH)
        low = make_message(size=400, priority=Priority.LOW)
        buffer.add(high, now=0.0)
        buffer.add(low, now=1.0)
        evicted = buffer.add(make_message(size=300, priority=Priority.MEDIUM),
                             now=2.0)
        assert evicted == [low]
        assert high.uuid in buffer

    def test_ties_broken_by_age(self):
        buffer = MessageBuffer(1_000, DropPolicy.DROP_LOWEST_PRIORITY)
        older = make_message(size=400, priority=Priority.LOW)
        newer = make_message(size=400, priority=Priority.LOW)
        buffer.add(older, now=0.0)
        buffer.add(newer, now=1.0)
        evicted = buffer.add(make_message(size=300), now=2.0)
        assert evicted == [older]


class TestReject:
    def test_reject_policy_never_evicts(self):
        buffer = MessageBuffer(1_000, DropPolicy.REJECT)
        resident = make_message(size=800)
        buffer.add(resident, now=0.0)
        with pytest.raises(BufferError_):
            buffer.add(make_message(size=300), now=1.0)
        assert resident.uuid in buffer
        assert buffer.rejections == 1


class TestExpiry:
    def test_expire_drops_old_messages(self):
        buffer = MessageBuffer(1_000)
        old = make_message(created_at=0.0, size=10)
        fresh = make_message(created_at=90.0, size=10)
        buffer.add(old, now=0.0)
        buffer.add(fresh, now=90.0)
        expired = buffer.expire(now=100.0, ttl=50.0)
        assert expired == [old]
        assert fresh.uuid in buffer
        assert buffer.drops == 1

    def test_ttl_measured_from_creation_not_arrival(self):
        buffer = MessageBuffer(1_000)
        relayed = make_message(created_at=0.0, size=10)
        buffer.add(relayed, now=95.0)  # arrived late in its life
        assert buffer.expire(now=100.0, ttl=50.0) == [relayed]

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ConfigurationError):
            MessageBuffer(100).expire(now=0.0, ttl=0.0)
