"""Non-fixture test helpers (importable as ``tests.helpers``)."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.messages.message import Message, Priority
from repro.mobility.trace import Contact, ContactTrace
from repro.network.node import Node
from repro.network.world import World
from repro.routing.base import Router
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams


def make_message(
    source: int = 0,
    created_at: float = 0.0,
    *,
    size: int = 1_000,
    quality: float = 0.8,
    priority: Priority = Priority.MEDIUM,
    content: Sequence[str] = ("flood", "rescue-team"),
    keywords: Optional[Sequence[str]] = None,
    uuid: Optional[str] = None,
) -> Message:
    """A small message with sane defaults for unit tests."""
    if keywords is None:
        keywords = tuple(content)
    return Message(
        source=source,
        created_at=created_at,
        size=size,
        quality=quality,
        priority=priority,
        content=frozenset(content),
        keywords=tuple(keywords),
        uuid=uuid,
    )


def make_world(
    interests: Dict[int, Sequence[str]],
    router: Router,
    *,
    link_speed: float = 1_000.0,
    buffer_capacity: int = 1_000_000,
    ttl: Optional[float] = None,
    seed: int = 7,
    roles: Optional[Dict[int, int]] = None,
    behaviors: Optional[Dict[int, object]] = None,
) -> World:
    """A world over explicitly scripted nodes (no mobility needed).

    Contacts are driven by hand-built :class:`ContactTrace` objects via
    ``world.load_contact_trace`` or by calling the internal contact
    hooks directly in tests.
    """
    nodes: List[Node] = []
    for node_id, keywords in sorted(interests.items()):
        nodes.append(
            Node(
                node_id,
                keywords,
                role=(roles or {}).get(node_id, 1),
                buffer_capacity=buffer_capacity,
                behavior=(behaviors or {}).get(node_id),
            )
        )
    return World(
        Engine(),
        nodes,
        router,
        link_speed=link_speed,
        streams=RandomStreams(seed),
        ttl=ttl,
    )


def contact(start: float, end: float, a: int, b: int) -> Contact:
    """Shorthand contact constructor."""
    return Contact(start, end, a, b)


def trace_of(*contacts: Contact) -> ContactTrace:
    """Shorthand trace constructor."""
    return ContactTrace(contacts)
