"""Unit tests for the extended router collection (NECTAR, TFT, RELICS,
epidemic variants, two-hop reward)."""

import pytest

from tests.helpers import contact, make_message, make_world, trace_of
from repro.errors import ConfigurationError
from repro.messages.message import Priority
from repro.routing.epidemic_variants import (
    ImmuneEpidemicRouter,
    PriorityEpidemicRouter,
)
from repro.routing.nectar import NectarRouter
from repro.routing.relics import RelicsRouter
from repro.routing.tft import TitForTatRouter
from repro.routing.two_hop_reward import TwoHopRewardRouter


class TestNectar:
    def test_index_grows_on_meetings_and_decays(self):
        router = NectarRouter(decay_per_second=1e-3)
        world = make_world({0: [], 1: [], 2: []}, router)
        world.load_contact_trace(trace_of(
            contact(10.0, 20.0, 0, 1),
            contact(30.0, 40.0, 0, 1),
            contact(2000.0, 2010.0, 0, 2),
        ))
        world.run(2100.0)
        # Two meetings with node 1 beat one with node 2 even after decay.
        assert router.index(0, 1) > 0.0
        assert router.index(0, 2) == pytest.approx(1.0)

    def test_forwards_to_frequent_meeter_of_destination(self):
        router = NectarRouter()
        world = make_world({0: [], 1: [], 2: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 20.0, 1, 2),     # 1 builds index toward 2
            contact(100.0, 150.0, 0, 1),   # 0 hands over: index(1,2) > index(0,2)
            contact(200.0, 250.0, 1, 2),   # 1 delivers
        ))
        world.run(300.0)
        assert message.uuid in world.node(2).delivered

    def test_does_not_forward_to_worse_carrier(self):
        router = NectarRouter()
        world = make_world({0: [], 1: [], 2: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        # Node 0 itself met the destination; node 1 never did.
        world.load_contact_trace(trace_of(
            contact(10.0, 20.0, 0, 2),
            contact(100.0, 150.0, 0, 1),
        ))
        world.run(200.0)
        assert message.uuid not in world.node(1).buffer

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            NectarRouter(decay_per_second=-1.0)
        with pytest.raises(ConfigurationError):
            NectarRouter(boost=0.0)


class TestPriorityEpidemic:
    def test_high_priority_transferred_first(self):
        router = PriorityEpidemicRouter()
        world = make_world({0: [], 1: []}, router, link_speed=1_000.0)
        low = make_message(source=0, size=1_000, priority=Priority.LOW)
        high = make_message(source=0, size=1_000, priority=Priority.HIGH)
        world.inject_message(low)   # injected first
        world.inject_message(high)
        # The contact fits exactly one 1 s transfer.
        world.load_contact_trace(trace_of(contact(10.0, 11.5, 0, 1)))
        world.run(100.0)
        assert world.node(1).has_seen(high.uuid)
        assert not world.node(1).has_seen(low.uuid)


class TestImmuneEpidemic:
    def test_delivered_message_is_cured(self):
        router = ImmuneEpidemicRouter()
        world = make_world({0: [], 1: ["flood"], 2: []}, router)
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 50.0, 0, 1),     # delivery: 1 becomes immune
            contact(100.0, 150.0, 1, 2),   # immunity gossip; no re-spread
        ))
        world.run(200.0)
        assert message.uuid in world.node(1).delivered
        assert message.uuid not in world.node(1).buffer
        assert message.uuid in router.immunity_of(1)
        # Node 2 learned the immunity and never buffered the message.
        assert message.uuid in router.immunity_of(2)
        assert message.uuid not in world.node(2).buffer

    def test_immunity_purges_existing_copies(self):
        router = ImmuneEpidemicRouter()
        world = make_world({0: [], 1: ["flood"], 2: []}, router)
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 50.0, 0, 2),     # 2 becomes a carrier
            contact(100.0, 150.0, 0, 1),   # delivery at 1: immune
            contact(200.0, 250.0, 1, 2),   # 2 hears the cure, purges
        ))
        world.run(300.0)
        assert message.uuid not in world.node(2).buffer

    def test_immune_reduces_traffic_vs_plain_epidemic(self):
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import run_comparison

        config = ScenarioConfig.tiny()
        results = run_comparison(
            config, ["epidemic", "epidemic-immune", "epidemic-priority"],
            seed=1,
        )
        assert (
            results["epidemic-immune"].traffic
            <= results["epidemic"].traffic
        )
        # The priority variant floods the same copies, just reordered.
        assert (
            abs(results["epidemic-priority"].mdr - results["epidemic"].mdr)
            < 0.2
        )


class TestTitForTat:
    def test_reciprocity_limits_freeloading(self):
        # epsilon admits one 1000 B message; the second is refused until
        # the receiver reciprocates.
        router = TitForTatRouter(epsilon_bytes=1_000)
        world = make_world({0: [], 1: []}, router)
        first = make_message(source=0, size=1_000)
        second = make_message(source=0, size=1_000)
        world.inject_message(first)
        world.inject_message(second)
        world.load_contact_trace(trace_of(contact(10.0, 100.0, 0, 1)))
        world.run(200.0)
        assert first.uuid in world.node(1).buffer
        assert second.uuid not in world.node(1).buffer
        assert router.carried(1, 0) == 1_000

    def test_reciprocation_restores_allowance(self):
        router = TitForTatRouter(epsilon_bytes=1_000)
        world = make_world({0: [], 1: []}, router)
        mine = make_message(source=0, size=1_000)
        yours = make_message(source=1, size=1_000)
        extra = make_message(source=0, size=1_000)
        world.inject_message(mine)
        world.inject_message(yours)
        world.inject_message(extra)
        world.load_contact_trace(trace_of(contact(10.0, 200.0, 0, 1)))
        world.run(300.0)
        # Both directions carried each other's traffic, so the balance
        # allows the extra message too.
        assert router.carried(1, 0) >= 1_000
        assert router.carried(0, 1) == 1_000
        assert extra.uuid in world.node(1).buffer

    def test_deliveries_ignore_tft_constraint(self):
        router = TitForTatRouter(epsilon_bytes=0)
        world = make_world({0: [], 1: ["flood"]}, router)
        message = make_message(source=0, size=1_000, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 100.0, 0, 1)))
        world.run(200.0)
        assert message.uuid in world.node(1).delivered

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            TitForTatRouter(epsilon_bytes=-1)


class TestRelics:
    def test_low_rank_consumer_starves(self):
        router = RelicsRouter(service_ratio=1.0, grace_bytes=1_500)
        world = make_world({0: [], 1: ["flood"]}, router)
        messages = [
            make_message(source=0, size=1_000, keywords=("flood",))
            for _ in range(4)
        ]
        for message in messages:
            world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 200.0, 0, 1)))
        world.run(300.0)
        delivered = sum(
            1 for m in messages if m.uuid in world.node(1).delivered
        )
        # Grace covers the first message; node 1 never relays, so the
        # rest are withheld.
        assert delivered == 1

    def test_relaying_restores_service(self):
        router = RelicsRouter(service_ratio=1.0, grace_bytes=1_500)
        world = make_world({0: [], 1: ["flood"], 2: []}, router)
        wanted = [
            make_message(source=0, size=1_000, keywords=("flood",))
            for _ in range(3)
        ]
        for message in wanted:
            world.inject_message(message)
        # Content/keywords avoid node 1's interests so it acts as a
        # relay for this message, not as a destination.
        carried = make_message(source=2, size=5_000, content=("fire",),
                               keywords=("fire",))
        world.inject_message(carried)
        world.load_contact_trace(trace_of(
            contact(10.0, 100.0, 1, 2),    # node 1 relays 5 kB for node 2
            contact(200.0, 400.0, 0, 1),   # then gets served fully
        ))
        world.run(500.0)
        assert router.rank(1) == 5_000
        delivered = sum(
            1 for m in wanted if m.uuid in world.node(1).delivered
        )
        assert delivered == 3

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            RelicsRouter(service_ratio=-0.1)
        with pytest.raises(ConfigurationError):
            RelicsRouter(grace_bytes=-1)


class TestTwoHopReward:
    def test_first_deliverer_collects_reward(self):
        router = TwoHopRewardRouter(reward=10.0, relay_cost=0.5,
                                    initial_tokens=100.0)
        world = make_world({0: [], 1: [], 2: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 50.0, 0, 1),     # recruit relay 1
            contact(100.0, 150.0, 1, 2),   # relay delivers, collects
        ))
        world.run(200.0)
        assert message.uuid in world.node(2).delivered
        assert router.ledger.balance(1) == pytest.approx(110.0)
        assert router.ledger.balance(2) == pytest.approx(90.0)

    def test_source_delivery_pays_nothing(self):
        router = TwoHopRewardRouter(initial_tokens=100.0)
        world = make_world({0: [], 1: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 50.0, 0, 1)))
        world.run(100.0)
        assert message.uuid in world.node(1).delivered
        assert router.ledger.transactions == ()

    def test_unattractive_offer_declined(self):
        # One token of reward cannot cover a 5-token relay cost.
        router = TwoHopRewardRouter(reward=1.0, relay_cost=5.0)
        world = make_world({0: [], 1: []}, router)
        message = make_message(source=0, size=100)
        world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 50.0, 0, 1)))
        world.run(100.0)
        assert message.uuid not in world.node(1).buffer
        assert router.offers_declined >= 1

    def test_information_settings_order_win_estimates(self):
        world_interests = {0: [], 1: [], 2: [], 3: []}
        estimates = {}
        for setting in ("full", "partial", "none"):
            router = TwoHopRewardRouter(
                information=setting, reward=10.0, relay_cost=0.1,
                pessimistic_copies=8,
            )
            world = make_world(dict(world_interests), router)
            message = make_message(source=0, size=100)
            world.inject_message(message)
            world.load_contact_trace(trace_of(
                contact(10.0, 50.0, 0, 1),
                contact(100.0, 150.0, 0, 2),
            ))
            world.run(200.0)
            estimates[setting] = router.win_probability_estimate(
                message.uuid
            )
        # Two copies out: partial sees 1/3; full discounts further for
        # the competition's head start; none assumes the worst.
        assert estimates["partial"] == pytest.approx(1.0 / 3.0)
        assert estimates["full"] < estimates["partial"]
        assert estimates["none"] == pytest.approx(1.0 / 9.0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            TwoHopRewardRouter(information="rumour")
        with pytest.raises(ConfigurationError):
            TwoHopRewardRouter(reward=0.0)
        with pytest.raises(ConfigurationError):
            TwoHopRewardRouter(relay_cost=-1.0)
