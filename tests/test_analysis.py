"""Unit tests for the statistical analysis helpers."""

import pytest

from tests.helpers import make_message
from repro.errors import ConfigurationError
from repro.metrics.analysis import (
    delivery_latencies,
    gini,
    latency_percentiles,
    mdr_over_time,
    summarize,
    welch_t_test,
)
from repro.metrics.collector import MetricsCollector


def collector_with_deliveries():
    metrics = MetricsCollector()
    message = make_message(created_at=0.0)
    metrics.on_message_created(message, intended={1, 2, 3, 4})
    metrics.on_delivered(message, 1, now=10.0)
    metrics.on_delivered(message, 2, now=50.0)
    metrics.on_delivered(message, 3, now=90.0)
    return metrics


class TestSummarize:
    def test_mean_and_ci(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.mean == pytest.approx(3.0)
        assert summary.count == 5
        assert summary.ci_low < 3.0 < summary.ci_high
        # 95% t interval for this sample: 3 +/- 1.963...
        assert summary.half_width == pytest.approx(1.9634, abs=1e-3)

    def test_single_sample_has_zero_width(self):
        summary = summarize([7.0])
        assert summary.mean == 7.0
        assert summary.ci_low == summary.ci_high == 7.0

    def test_constant_sample_has_zero_width(self):
        summary = summarize([2.0, 2.0, 2.0])
        assert summary.std == 0.0
        assert summary.half_width == 0.0

    def test_wider_confidence_wider_interval(self):
        data = [1.0, 2.0, 3.0, 4.0]
        narrow = summarize(data, confidence=0.80)
        wide = summarize(data, confidence=0.99)
        assert wide.half_width > narrow.half_width

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])
        with pytest.raises(ConfigurationError):
            summarize([1.0], confidence=1.0)


class TestWelch:
    def test_identical_series_not_significant(self):
        t_stat, p_value = welch_t_test([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        assert t_stat == pytest.approx(0.0)
        assert p_value == pytest.approx(1.0)

    def test_separated_series_significant(self):
        t_stat, p_value = welch_t_test(
            [0.90, 0.91, 0.92, 0.93], [0.60, 0.61, 0.62, 0.63],
        )
        assert p_value < 0.001
        assert t_stat > 0

    def test_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            welch_t_test([1.0], [1.0, 2.0])


class TestLatency:
    def test_latencies_extracted(self):
        metrics = collector_with_deliveries()
        assert sorted(delivery_latencies(metrics)) == [10.0, 50.0, 90.0]

    def test_percentiles(self):
        metrics = collector_with_deliveries()
        result = latency_percentiles(metrics, percentiles=(50.0,))
        assert result[50.0] == pytest.approx(50.0)

    def test_empty_collector_gives_zeros(self):
        assert latency_percentiles(MetricsCollector()) == {
            50.0: 0.0, 90.0: 0.0, 99.0: 0.0,
        }


class TestMdrOverTime:
    def test_curve_is_cumulative_and_ends_at_mdr(self):
        metrics = collector_with_deliveries()
        curve = mdr_over_time(metrics, horizon=100.0, points=10)
        values = [v for _, v in curve]
        assert values == sorted(values)
        assert values[-1] == pytest.approx(
            metrics.message_delivery_ratio()
        )
        # After 50s two of four intended pairs were served.
        assert dict(curve)[50.0] == pytest.approx(0.5)

    def test_invalid_inputs_rejected(self):
        metrics = MetricsCollector()
        with pytest.raises(ConfigurationError):
            mdr_over_time(metrics, horizon=0.0)
        with pytest.raises(ConfigurationError):
            mdr_over_time(metrics, horizon=10.0, points=0)


class TestGini:
    def test_perfect_equality(self):
        assert gini([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_total_inequality_approaches_one(self):
        value = gini([0.0] * 99 + [100.0])
        assert value == pytest.approx(0.99, abs=1e-6)

    def test_known_value(self):
        # For [1, 3]: G = (|1-3| + |3-1|) / (2 * n^2 * mean) = 0.25.
        assert gini([1.0, 3.0]) == pytest.approx(0.25)

    def test_empty_and_zero_inputs(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0]) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            gini([-1.0, 2.0])

    def test_trading_economy_develops_inequality(self):
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import run_scenario

        result = run_scenario(ScenarioConfig.tiny(), "incentive", seed=1)
        balances = result.router.ledger.balances().values()
        value = gini(balances)
        # Everyone starts equal (gini 0); a run's worth of awards must
        # spread the distribution without leaving the [0, 1] range.
        assert 0.0 < value < 1.0
