"""The scheme registry: resolution, tags, completeness, and the
registry-driven coverage guarantees.

Three layers of test here:

1. **Registry mechanics** — duplicate/unknown-tag rejection, the
   ``resolve_scheme`` error contract, registration order.
2. **Completeness** — every surface that enumerates schemes (CLI
   ``choices``, figure scheme lists, sweep/fault defaults, the
   EXPERIMENTS.md scheme table) is asserted equal to the registry, so a
   new registration cannot silently miss one of them.
3. **Behaviour over the whole catalog** — a smoke run of *every*
   registered scheme, golden equality for every pre-registry scheme,
   and a trace-audit/conservation property over every ``token``-tagged
   scheme.  These parametrize over the registry itself: registering a
   new scheme extends the coverage with zero test edits.
"""

import argparse
import json
import math
import pathlib
import re

import pytest

from repro.errors import ConfigurationError
from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.runner import SCHEMES, build_contact_trace
from repro.network.buffer import DropPolicy
from repro.routing.two_hop_reward import TwoHopRewardRouter
from repro.schemes import (
    KNOWN_TAGS,
    all_specs,
    resolve_scheme,
    scheme_names,
    tagged,
)
from repro.schemes.registry import _REGISTRY, SchemeSpec, register
from repro.trace.audit import replay_trace

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "schemes_tiny_seed1.json"

#: The scheme list as it stood before the registry existed; the registry
#: must preserve this prefix (order included) so `SCHEMES` indexing,
#: docs and muscle memory survive the refactor.
HISTORICAL_SCHEMES = (
    "incentive",
    "incentive-no-enrichment",
    "incentive-no-reputation",
    "incentive-bayesian",
    "incentive-collusion",
    "chitchat",
    "epidemic",
    "epidemic-priority",
    "epidemic-immune",
    "direct",
    "two-hop",
    "spray-and-wait",
    "prophet",
    "nectar",
    "tit-for-tat",
    "relics",
    "two-hop-reward",
)

COMPOSED_SCHEMES = (
    "incentive-epidemic",
    "incentive-prophet",
    "incentive-spray-and-wait",
    "incentive-chitchat-hetero",
    "minority-game",
)


@pytest.fixture(scope="module")
def tiny():
    return ScenarioConfig.tiny()


@pytest.fixture(scope="module")
def contact_trace(tiny):
    # Sharing one pre-built trace across every run in this module is
    # bit-identical to letting run_scenario rebuild it (same seed, same
    # mobility fields) and dominates the module's wall-clock savings.
    return build_contact_trace(tiny, 1)


@pytest.fixture(scope="module")
def runs(tiny, contact_trace):
    """One tiny seed-1 run per registered scheme, built on demand."""
    cache = {}

    def run(scheme):
        if scheme not in cache:
            cache[scheme] = run_scenario(tiny, scheme, 1, trace=contact_trace)
        return cache[scheme]

    return run


class TestRegistryMechanics:
    def test_resolve_returns_spec(self):
        spec = resolve_scheme("incentive")
        assert isinstance(spec, SchemeSpec)
        assert spec.name == "incentive"
        assert callable(spec.builder)
        assert spec.doc

    def test_unknown_scheme_error_lists_every_name(self):
        with pytest.raises(ConfigurationError) as excinfo:
            resolve_scheme("no-such-scheme")
        message = str(excinfo.value)
        assert "no-such-scheme" in message
        for name in scheme_names():
            assert name in message

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register("incentive", lambda c, u: None, doc="dup")
        # The failed registration must not have clobbered the original.
        assert resolve_scheme("incentive").doc != "dup"

    def test_unknown_tag_rejected_at_registration(self):
        with pytest.raises(ConfigurationError, match="unknown scheme tags"):
            register(
                "tag-typo-victim", lambda c, u: None,
                doc="x", tags=("tokn",),
            )
        assert "tag-typo-victim" not in scheme_names()

    def test_unknown_tag_rejected_at_query(self):
        # A misspelled tag in a test/figure must fail loudly, not
        # return an empty tuple and silently skip coverage.
        with pytest.raises(ConfigurationError, match="unknown scheme tag"):
            tagged("tokn")

    def test_registration_preserves_historical_order(self):
        names = scheme_names()
        assert names[: len(HISTORICAL_SCHEMES)] == HISTORICAL_SCHEMES
        assert names[len(HISTORICAL_SCHEMES):] == COMPOSED_SCHEMES

    def test_runner_schemes_is_the_registry(self):
        assert SCHEMES == scheme_names()

    def test_all_specs_matches_names(self):
        assert tuple(s.name for s in all_specs()) == scheme_names()

    def test_every_tag_in_vocabulary(self):
        for spec in all_specs():
            assert spec.tags <= KNOWN_TAGS, spec.name

    def test_token_schemes_prioritise_buffer_drops(self):
        # Incentive-layer schemes evict low-priority messages first
        # (custody of a high-priority message is worth more); the
        # two-hop-reward baseline keeps its historical drop-oldest.
        for name in tagged("incentive-layer"):
            assert resolve_scheme(name).drop_policy is (
                DropPolicy.DROP_LOWEST_PRIORITY
            ), name
        assert resolve_scheme("two-hop-reward").drop_policy is (
            DropPolicy.DROP_OLDEST
        )

    def test_paper_comparison_is_exactly_the_papers_pair(self):
        assert set(tagged("paper-comparison")) == {"chitchat", "incentive"}


class TestConfigValidation:
    def test_config_rejects_unknown_scheme_at_construction(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            ScenarioConfig.tiny(scheme="no-such-scheme")

    def test_config_accepts_every_registered_scheme(self):
        for name in scheme_names():
            assert ScenarioConfig.tiny(scheme=name).scheme == name

    def test_run_scenario_rejects_unknown_scheme_before_building(self):
        with pytest.raises(ConfigurationError, match="unknown scheme"):
            run_scenario(ScenarioConfig.tiny(), "no-such-scheme", 1)


def _subparser(name):
    from repro.cli import build_parser

    parser = build_parser()
    action = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    return action.choices[name]


def _choices(subcommand, flag):
    for action in _subparser(subcommand)._actions:
        if flag in action.option_strings or action.dest == flag:
            return tuple(action.choices)
    raise AssertionError(f"{subcommand} has no {flag} option")


class TestCompleteness:
    """Every scheme-enumerating surface must equal the registry."""

    def test_cli_run_choices(self):
        assert _choices("run", "--scheme") == scheme_names()

    def test_cli_compare_choices(self):
        assert _choices("compare", "schemes") == scheme_names()

    def test_cli_faults_choices(self):
        assert _choices("faults", "--schemes") == scheme_names()

    def test_figures_use_the_paper_pair(self):
        from repro.experiments.figures import (
            BASELINE_SCHEME,
            INCENTIVE_SCHEME,
            PAPER_PAIR,
        )

        assert PAPER_PAIR == tuple(sorted(tagged("paper-comparison")))
        assert (BASELINE_SCHEME, INCENTIVE_SCHEME) == ("chitchat", "incentive")

    def test_sweep_and_fault_defaults_are_tagged(self):
        import inspect

        from repro.experiments.faults import fault_sweep
        from repro.experiments.sweeps import sweep

        pair = tagged("paper-comparison")
        assert inspect.signature(sweep).parameters["schemes"].default == pair
        assert (
            inspect.signature(fault_sweep).parameters["schemes"].default
            == pair
        )

    def test_experiments_scheme_table_matches_registry(self):
        text = (REPO_ROOT / "EXPERIMENTS.md").read_text(encoding="utf-8")
        match = re.search(
            r"<!-- scheme-table-begin -->(.*?)<!-- scheme-table-end -->",
            text,
            re.S,
        )
        assert match, "EXPERIMENTS.md lacks the scheme-table markers"
        rows = {}
        for line in match.group(1).splitlines():
            cell = re.match(r"\| `([a-z0-9-]+)` \|", line)
            if cell:
                rows[cell.group(1)] = line
        assert tuple(rows) == scheme_names()
        for spec in all_specs():
            row = rows[spec.name]
            for tag in sorted(spec.tags):
                assert tag in row, f"{spec.name} row missing tag {tag!r}"


class TestGoldenEquality:
    """Bit-identical behaviour for every pre-registry scheme.

    The golden file was generated *before* the IncentiveLayer /
    registry refactor, so exact equality here proves the composition
    rewrite changed nothing observable for the historical catalog.
    """

    @pytest.mark.parametrize("scheme", HISTORICAL_SCHEMES)
    def test_summary_matches_golden(self, scheme, runs):
        golden = json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))
        assert tuple(sorted(golden)) == tuple(sorted(HISTORICAL_SCHEMES))
        assert runs(scheme).summary() == golden[scheme]


class TestWholeCatalog:
    """Registry-parametrized behaviour: new registrations are covered
    here automatically, with zero test edits."""

    @pytest.mark.parametrize("scheme", scheme_names())
    def test_scheme_runs_end_to_end(self, scheme, runs):
        result = runs(scheme)
        summary = result.summary()
        assert result.router.name  # every router self-identifies
        assert 0.0 <= summary["mdr"] <= 1.0
        for key, value in summary.items():
            if isinstance(value, float):
                assert math.isfinite(value), (scheme, key)

    @pytest.mark.parametrize("scheme", tagged("token"))
    def test_token_scheme_passes_trace_audit(
        self, scheme, tiny, contact_trace, tmp_path
    ):
        path = tmp_path / f"{scheme}.jsonl"
        result = run_scenario(
            tiny, scheme, 1, trace=contact_trace, trace_path=str(path)
        )
        audit = replay_trace(path)
        assert audit.ok, [str(v) for v in audit.violations]
        endowment = tiny.n_nodes * tiny.incentive.initial_tokens
        assert audit.endowment == pytest.approx(endowment)
        # Escrow fully drained and the closed economy intact at run end.
        assert audit.final_escrow == pytest.approx(0.0, abs=1e-9)
        assert audit.final_supply == pytest.approx(endowment)
        # The router's own ledger agrees with the independent replay.
        ledger = result.router.ledger
        assert ledger.total_supply() == pytest.approx(endowment)

    @pytest.mark.parametrize("scheme", tagged("token"))
    def test_tracing_never_changes_results(
        self, scheme, tiny, contact_trace, tmp_path, runs
    ):
        traced = run_scenario(
            tiny, scheme, 1, trace=contact_trace,
            trace_path=str(tmp_path / f"{scheme}.jsonl"),
        )
        assert traced.summary() == runs(scheme).summary()


class TestTwoHopRewardBuilder:
    """Regression for the two-hop-reward construction (it predates the
    ``(config, universe)`` builder signature)."""

    def test_builder_threads_config_parameters(self):
        config = ScenarioConfig.tiny()
        router = resolve_scheme("two-hop-reward").builder(config, None)
        assert isinstance(router, TwoHopRewardRouter)
        assert router.initial_tokens == config.incentive.initial_tokens
        assert router.reward == config.incentive.max_incentive

    def test_ledger_conserves_supply(self, tiny, contact_trace):
        result = run_scenario(tiny, "two-hop-reward", 1, trace=contact_trace)
        ledger = result.router.ledger
        endowment = tiny.n_nodes * tiny.incentive.initial_tokens
        assert ledger.total_supply() == pytest.approx(endowment)
        assert ledger.escrowed_total() == pytest.approx(0.0, abs=1e-9)


class TestRegistryIsolation:
    def test_mechanics_tests_left_no_residue(self):
        # The rejection tests above must not have mutated the registry.
        assert "tag-typo-victim" not in _REGISTRY
        assert scheme_names() == HISTORICAL_SCHEMES + COMPOSED_SCHEMES
