"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bayesian_reputation import BayesianReputationSystem, BetaBelief
from repro.core.incentive import IncentiveParams
from repro.metrics.analysis import gini, summarize
from repro.metrics.reports import ascii_chart
from repro.mobility.manhattan import ManhattanGrid
from repro.routing.tft import TitForTatRouter

PARAMS = IncentiveParams()


class TestBetaBeliefProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_mean_stays_in_unit_interval(self, observations):
        belief = BetaBelief()
        for value in observations:
            belief.observe(value)
            assert 0.0 <= belief.mean <= 1.0
            assert belief.alpha >= 1.0
            assert belief.beta >= 1.0

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1, max_size=30,
        ),
        st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_fading_contracts_toward_prior(self, observations, factor):
        belief = BetaBelief()
        for value in observations:
            belief.observe(value)
        before = abs(belief.mean - 0.5)
        belief.fade(factor)
        after = abs(belief.mean - 0.5)
        assert after <= before + 1e-12


class TestBayesianSystemProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["rate", "merge"]),
                st.integers(min_value=1, max_value=4),
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_scores_stay_on_scale(self, operations):
        system = BayesianReputationSystem(PARAMS)
        book = system.book(0)
        for kind, subject, value in operations:
            if kind == "rate":
                book.rate_message(subject, value)
            else:
                book.merge_opinion(subject, value)
            assert 0.0 <= book.score(subject) <= PARAMS.max_rating
            assert 0.0 <= book.award_multiplier(subject, []) <= 1.0


class TestGiniProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
            min_size=1, max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_gini_bounded(self, values):
        coefficient = gini(values)
        assert -1e-9 <= coefficient < 1.0

    @given(
        st.lists(
            st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
            min_size=2, max_size=30,
        ),
        st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_gini_scale_invariant(self, values, scale):
        assert gini(values) == pytest.approx(
            gini([v * scale for v in values]), abs=1e-9,
        )


class TestSummarizeProperties:
    @given(
        st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2, max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_ci_brackets_mean(self, values):
        summary = summarize(values)
        assert summary.ci_low <= summary.mean <= summary.ci_high


class TestAsciiChartProperties:
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            min_size=1, max_size=20,
        ),
        st.integers(min_value=1, max_value=80),
    )
    @settings(max_examples=50, deadline=None)
    def test_bars_never_exceed_width(self, points, width):
        chart = ascii_chart({"s": points}, width=width, y_max=1.0)
        for line in chart.splitlines():
            if "|" in line:
                bar = line.split("|")[1]
                assert len(bar) == width


class TestManhattanProperties:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=20),
        st.floats(min_value=1.0, max_value=300.0, allow_nan=False),
    )
    @settings(max_examples=30, deadline=None)
    def test_nodes_always_on_streets_and_in_area(self, seed, steps, dt):
        area = (600.0, 600.0)
        block = 100.0
        model = ManhattanGrid(
            10, area, np.random.default_rng(seed), block_size=block,
        )
        for _ in range(steps):
            model.advance(dt)
            positions = model.positions
            assert (positions >= -1e-6).all()
            assert (positions[:, 0] <= area[0] + 1e-6).all()
            assert (positions[:, 1] <= area[1] + 1e-6).all()
            x_offset = positions[:, 0] % block
            y_offset = positions[:, 1] % block
            on_x = np.minimum(x_offset, block - x_offset) < 1e-5
            on_y = np.minimum(y_offset, block - y_offset) < 1e-5
            assert (on_x | on_y).all()


class TestTftProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=1),
                st.integers(min_value=100, max_value=5_000),
            ),
            max_size=30,
        ),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_allowance_rule_is_symmetric_in_accounting(
        self, requests, epsilon
    ):
        """Direct unit check of the reciprocity inequality: whatever the
        accept/reject history, the committed imbalance never exceeds
        epsilon plus one message."""
        router = TitForTatRouter(epsilon_bytes=epsilon)
        for requester, size in requests:
            carrier = 1 - requester
            if router.within_allowance(carrier, requester, size):
                key = (carrier, requester)
                router._carried[key] = router._carried.get(key, 0) + size
            imbalance = (
                router.carried(carrier, requester)
                - router.carried(requester, carrier)
            )
            assert imbalance <= epsilon + size
