"""Unit tests for the baseline (node-centric) routers."""

import pytest

from tests.helpers import contact, make_message, make_world, trace_of
from repro.routing.direct import DirectContactRouter
from repro.routing.epidemic import EpidemicRouter
from repro.routing.prophet import ProphetRouter
from repro.routing.spray_and_wait import SprayAndWaitRouter
from repro.routing.two_hop import TwoHopRouter


def run_chain(router, *, hops, interests=None):
    """Source 0 -> ... -> destination; sequential pairwise contacts."""
    interests = interests if interests is not None else {
        0: [], 1: [], 2: [], 3: ["flood"],
    }
    world = make_world(interests, router)
    message = make_message(source=0, size=100, keywords=("flood",),
                           content=("flood",))
    world.inject_message(message)
    contacts = []
    time = 10.0
    for a, b in hops:
        contacts.append(contact(time, time + 50.0, a, b))
        time += 100.0
    world.load_contact_trace(trace_of(*contacts))
    world.run(time + 100.0)
    return world, message


class TestEpidemic:
    def test_floods_along_any_path(self):
        world, message = run_chain(
            EpidemicRouter(), hops=[(0, 1), (1, 2), (2, 3)],
        )
        assert message.uuid in world.node(3).delivered
        # Every intermediate holds a copy.
        assert message.uuid in world.node(1).buffer
        assert message.uuid in world.node(2).buffer

    def test_no_duplicate_transfers_to_same_node(self):
        router = EpidemicRouter()
        world = make_world({0: [], 1: []}, router)
        message = make_message(source=0, size=100)
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 50.0, 0, 1), contact(100.0, 150.0, 0, 1),
        ))
        world.run(200.0)
        assert world.metrics.transfers_completed == 1


class TestDirectContact:
    def test_delivers_only_source_to_destination(self):
        world, message = run_chain(
            DirectContactRouter(), hops=[(0, 3)],
        )
        assert message.uuid in world.node(3).delivered

    def test_never_relays(self):
        world, message = run_chain(
            DirectContactRouter(), hops=[(0, 1), (1, 3)],
        )
        assert message.uuid not in world.node(3).delivered
        assert world.metrics.transfers_completed == 0


class TestTwoHop:
    def test_source_relay_destination_path_works(self):
        world, message = run_chain(
            TwoHopRouter(), hops=[(0, 1), (1, 3)],
        )
        assert message.uuid in world.node(3).delivered

    def test_three_hop_path_fails(self):
        # Relays do not re-relay: 0 -> 1 -> 2 never happens.
        world, message = run_chain(
            TwoHopRouter(), hops=[(0, 1), (1, 2), (2, 3)],
        )
        assert message.uuid not in world.node(3).delivered
        assert message.uuid not in world.node(2).buffer


class TestSprayAndWait:
    def test_copies_halve_at_each_spray(self):
        router = SprayAndWaitRouter(initial_copies=8)
        world = make_world({0: [], 1: [], 2: []}, router)
        message = make_message(source=0, size=100)
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 50.0, 0, 1), contact(100.0, 150.0, 0, 2),
        ))
        world.run(200.0)
        # 8 -> grant 4 to node 1 (keep 4) -> grant 2 to node 2 (keep 2).
        assert router.copies_held(0, message.uuid) == 2
        assert router.copies_held(1, message.uuid) == 4
        assert router.copies_held(2, message.uuid) == 2

    def test_single_copy_node_waits(self):
        router = SprayAndWaitRouter(initial_copies=2)
        world = make_world({0: [], 1: [], 2: [], 3: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 50.0, 0, 1),     # 1 now holds a single copy
            contact(100.0, 150.0, 1, 2),   # waiting: must not spray to 2
            contact(200.0, 250.0, 1, 3),   # but delivers to destination
        ))
        world.run(300.0)
        assert message.uuid not in world.node(2).buffer
        assert message.uuid in world.node(3).delivered

    def test_delivery_to_destination_always_allowed(self):
        router = SprayAndWaitRouter(initial_copies=1)
        world, message = (lambda w: (w, None))(None)
        world = make_world({0: [], 1: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 50.0, 0, 1)))
        world.run(100.0)
        assert message.uuid in world.node(1).delivered

    def test_invalid_copy_count_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SprayAndWaitRouter(initial_copies=0)


class TestProphet:
    def test_predictability_grows_on_encounters(self):
        router = ProphetRouter()
        world = make_world({0: [], 1: []}, router)
        world.load_contact_trace(trace_of(contact(10.0, 20.0, 0, 1)))
        world.run(50.0)
        assert router.predictability(0, 1) == pytest.approx(0.75)

    def test_predictability_ages_between_encounters(self):
        router = ProphetRouter(gamma=0.99)
        world = make_world({0: [], 1: []}, router)
        world.load_contact_trace(trace_of(
            contact(10.0, 20.0, 0, 1), contact(500.0, 510.0, 0, 1),
        ))
        world.run(600.0)
        # Second encounter re-boosts after aging; still below 1.
        assert 0.75 < router.predictability(0, 1) < 1.0

    def test_transitivity_builds_indirect_predictability(self):
        router = ProphetRouter()
        world = make_world({0: [], 1: [], 2: []}, router)
        world.load_contact_trace(trace_of(
            contact(10.0, 20.0, 1, 2), contact(100.0, 110.0, 0, 1),
        ))
        world.run(200.0)
        assert router.predictability(0, 2) > 0.0

    def test_forwards_toward_better_carrier(self):
        router = ProphetRouter()
        world = make_world({0: [], 1: [], 2: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 20.0, 1, 2),    # 1 becomes a good carrier for 2
            contact(100.0, 150.0, 0, 1),  # source hands the message over
            contact(200.0, 250.0, 1, 2),  # carrier delivers
        ))
        world.run(300.0)
        assert message.uuid in world.node(2).delivered

    def test_invalid_parameters_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ProphetRouter(p_encounter=0.0)
        with pytest.raises(ConfigurationError):
            ProphetRouter(beta_transitive=1.5)
        with pytest.raises(ConfigurationError):
            ProphetRouter(gamma=1.0)
