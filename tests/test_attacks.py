"""Tests for the attack models (whitewashing, collusive praise)."""

import pytest

from repro.agents.attacks import WhitewashAttack
from repro.core.incentive import IncentiveParams
from repro.core.reputation import ReputationSystem
from repro.errors import ConfigurationError
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.sim.engine import Engine


@pytest.fixture
def params():
    return IncentiveParams()


class TestWhitewashAttack:
    def test_wash_triggers_below_threshold(self, params):
        engine = Engine()
        reputation = ReputationSystem(params)
        reputation.book(1).rate_message(9, 0.5)  # 9's name is mud at 1
        attack = WhitewashAttack(
            engine, reputation, attackers=[9], observers=[1, 2],
            wash_threshold=2.0, check_interval=100.0,
        )
        attack.start()
        engine.run_until(150.0)
        assert attack.wash_count == 1
        # After the wash, node 9 looks like an unknown node again.
        assert not reputation.book(1).has_opinion(9)
        assert reputation.book(1).score(9) == params.default_rating

    def test_no_wash_above_threshold(self, params):
        engine = Engine()
        reputation = ReputationSystem(params)
        reputation.book(1).rate_message(9, 4.5)
        attack = WhitewashAttack(
            engine, reputation, attackers=[9], observers=[1],
            wash_threshold=2.0, check_interval=100.0,
        )
        attack.start()
        engine.run_until(500.0)
        assert attack.wash_count == 0

    def test_repeated_washes_are_logged(self, params):
        engine = Engine()
        reputation = ReputationSystem(params)
        attack = WhitewashAttack(
            engine, reputation, attackers=[9], observers=[1],
            wash_threshold=2.0, check_interval=100.0,
        )
        attack.start()
        # Re-smear node 9 after every check.
        for round_start in (50.0, 150.0, 250.0):
            engine.schedule_at(
                round_start,
                lambda: reputation.book(1).rate_message(9, 0.0),
            )
        engine.run_until(400.0)
        assert attack.wash_count >= 2
        assert all(a == 9 for _, a in attack.washes)

    def test_stop_disarms(self, params):
        engine = Engine()
        reputation = ReputationSystem(params)
        reputation.book(1).rate_message(9, 0.0)
        attack = WhitewashAttack(
            engine, reputation, attackers=[9], observers=[1],
            wash_threshold=2.0, check_interval=100.0,
        )
        attack.start()
        attack.stop()
        engine.run_until(500.0)
        assert attack.wash_count == 0

    def test_invalid_construction(self, params):
        engine = Engine()
        reputation = ReputationSystem(params)
        with pytest.raises(ConfigurationError):
            WhitewashAttack(engine, reputation, [9], [1],
                            check_interval=0.0)
        with pytest.raises(ConfigurationError):
            WhitewashAttack(engine, reputation, [9], [1],
                            wash_threshold=-1.0)


class TestCollusion:
    def test_collusion_props_up_malicious_reputation(self):
        config = ScenarioConfig.tiny(malicious_fraction=0.3)
        honest_view = {}
        for scheme in ("incentive", "incentive-collusion"):
            result = run_scenario(config, scheme, seed=3)
            reputation = result.router.reputation
            # Average as seen by *everyone* — collusive praise inflates
            # the malicious raters' books, pulling the global view up.
            observers = sorted(
                result.honest_ids | result.selfish_ids | result.malicious_ids
            )
            scores = [
                reputation.average_score_of(node, observers)
                for node in sorted(result.malicious_ids)
            ]
            honest_view[scheme] = sum(scores) / len(scores)
        assert (
            honest_view["incentive-collusion"] > honest_view["incentive"]
        )

    def test_alpha_weighting_limits_collusion_damage(self):
        # Among honest observers only, malicious nodes still end up
        # below the unknown default even under collusion: own first-hand
        # evidence dominates hearsay (alpha > 0.5).
        config = ScenarioConfig.tiny(malicious_fraction=0.3)
        result = run_scenario(config, "incentive-collusion", seed=3)
        reputation = result.router.reputation
        observers = sorted(result.honest_ids)
        scores = [
            reputation.average_score_of(node, observers)
            for node in sorted(result.malicious_ids)
        ]
        average = sum(scores) / len(scores)
        assert average < config.incentive.default_rating
