"""Property tests pinning the fused router state to the legacy state.

Two model-based equivalences back the tick-batched router state
(DESIGN.md "Tick-batched router state"):

* Random decay/growth/add_direct sequences applied to an
  :class:`~repro.routing.chitchat.InterestStore` (via its batched
  operations) and to standalone per-node
  :class:`~repro.routing.chitchat.InterestTable` objects produce
  **bit-identical** weights, direct flags and membership.
* Random rate/merge/exchange/forget sequences applied to the
  array-backed :class:`~repro.core.reputation.ReputationBook` and to a
  plain-dict reference model produce bit-identical scores — including
  the ``forget()`` whitewashing-erase path.

Exact ``==`` on floats throughout: the batched forms evaluate the same
IEEE expression per element, so any drift is a bug, not tolerance.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incentive import IncentiveParams
from repro.core.reputation import ReputationSystem
from repro.routing.chitchat import InterestStore, InterestTable, KeywordIndex

PARAMS = IncentiveParams()

BETA = 0.01
GROWTH_SCALE = 0.01
ELAPSED_CAP = 600.0

N_NODES = 6
KEYWORDS = [f"k{i}" for i in range(6)]


# ----------------------------------------------------------------------
# Interest store vs per-node tables
# ----------------------------------------------------------------------
@st.composite
def interest_scenarios(draw):
    direct = [
        draw(st.lists(st.sampled_from(KEYWORDS), max_size=3, unique=True))
        for _ in range(N_NODES)
    ]
    n_ops = draw(st.integers(min_value=0, max_value=20))
    ops = []
    for _ in range(n_ops):
        dt = draw(st.floats(min_value=0.0, max_value=500.0,
                            allow_nan=False))
        kind = draw(st.sampled_from(["decay", "grow", "add_direct"]))
        if kind == "decay":
            nodes = draw(st.lists(
                st.integers(min_value=0, max_value=N_NODES - 1),
                min_size=1, max_size=N_NODES, unique=True,
            ))
            connected = {
                node: draw(st.lists(st.sampled_from(KEYWORDS),
                                    max_size=4, unique=True))
                for node in nodes
            }
            ops.append(("decay", dt, nodes, connected))
        elif kind == "grow":
            order = draw(st.permutations(range(N_NODES)))
            n_pairs = draw(st.integers(min_value=1,
                                       max_value=N_NODES // 2))
            pairs = [
                (order[2 * k], order[2 * k + 1]) for k in range(n_pairs)
            ]
            elapsed = [
                draw(st.floats(min_value=0.0, max_value=900.0,
                               allow_nan=False))
                for _ in pairs
            ]
            ops.append(("grow", dt, pairs, elapsed))
        else:
            node = draw(st.integers(min_value=0, max_value=N_NODES - 1))
            keyword = draw(st.sampled_from(KEYWORDS))
            ops.append(("add_direct", dt, node, keyword))
    return direct, ops


def _table_state(table):
    return (
        {kw: table.weight(kw) for kw in KEYWORDS},
        {kw: table.is_direct(kw) for kw in KEYWORDS},
        set(table.keywords),
    )


class TestInterestStoreEquivalence:
    @given(interest_scenarios())
    @settings(max_examples=150, deadline=None)
    def test_batched_store_matches_per_node_tables(self, scenario):
        direct, ops = scenario
        legacy_index = KeywordIndex()
        legacy = [
            InterestTable(interests, 0.0, index=legacy_index)
            for interests in direct
        ]
        fused_index = KeywordIndex()
        store = InterestStore(fused_index, rows=4)
        fused = [
            store.create_table(interests, created_at=0.0)
            for interests in direct
        ]
        now = 0.0
        for op in ops:
            kind, dt = op[0], op[1]
            now += dt
            if kind == "decay":
                _, _, nodes, connected = op
                for node in nodes:
                    legacy[node].decay(
                        now, set(connected[node]), beta=BETA
                    )
                live = [
                    node for node in nodes
                    if fused[node].present_ids().size > 0
                ]
                if live:
                    mask = np.zeros(
                        (len(live), store.columns), dtype=bool
                    )
                    for k, node in enumerate(live):
                        for kw in connected[node]:
                            kid = fused_index.get(kw)
                            if kid is not None and kid < store.columns:
                                mask[k, kid] = True
                    rows = np.array(
                        [fused[node]._row for node in live],
                        dtype=np.intp,
                    )
                    store.batch_decay(rows, mask, now, beta=BETA)
            elif kind == "grow":
                _, _, pairs, elapsed = op
                for (a, b), duration in zip(pairs, elapsed):
                    # Legacy two-sided growth: snapshot both first
                    # (run_rtsr_growth's symmetry discipline).
                    ids_a, w_a, d_a = legacy[a].snapshot_arrays()
                    ids_b, w_b, d_b = legacy[b].snapshot_arrays()
                    legacy[a].grow_from_arrays(
                        ids_b, w_b, d_b, now, duration,
                        growth_scale=GROWTH_SCALE,
                        elapsed_cap=ELAPSED_CAP,
                    )
                    legacy[b].grow_from_arrays(
                        ids_a, w_a, d_a, now, duration,
                        growth_scale=GROWTH_SCALE,
                        elapsed_cap=ELAPSED_CAP,
                    )
                live_pairs = [
                    ((a, b), min(duration, ELAPSED_CAP))
                    for (a, b), duration in zip(pairs, elapsed)
                    if min(duration, ELAPSED_CAP) > 0.0
                ]
                if live_pairs:
                    store.batch_grow_pairs(
                        np.array([fused[a]._row
                                  for (a, _), _ in live_pairs],
                                 dtype=np.intp),
                        np.array([fused[b]._row
                                  for (_, b), _ in live_pairs],
                                 dtype=np.intp),
                        np.array([eff for _, eff in live_pairs]),
                        now,
                        growth_scale=GROWTH_SCALE,
                    )
            else:
                _, _, node, keyword = op
                legacy[node].add_direct(keyword, now)
                fused[node].add_direct(keyword, now)
            for node in range(N_NODES):
                assert _table_state(fused[node]) == _table_state(
                    legacy[node]
                ), f"node {node} diverged after {kind}"


# ----------------------------------------------------------------------
# Array-backed reputation books vs a dict reference model
# ----------------------------------------------------------------------
class _ReferenceBooks:
    """Plain-dict replay of the historical per-subject reputation code."""

    def __init__(self, node_ids, alpha, default):
        self.alpha = alpha
        self.default = default
        self.scores = {node: {} for node in node_ids}
        self.own_sum = {node: {} for node in node_ids}
        self.own_count = {node: {} for node in node_ids}

    def rate(self, observer, subject, rating):
        self.own_sum[observer][subject] = (
            self.own_sum[observer].get(subject, 0.0) + rating
        )
        self.own_count[observer][subject] = (
            self.own_count[observer].get(subject, 0) + 1
        )
        self.scores[observer][subject] = (
            self.own_sum[observer][subject]
            / self.own_count[observer][subject]
        )

    def merge(self, observer, subject, heard):
        if subject == observer:
            return
        scores = self.scores[observer]
        if subject in scores:
            scores[subject] = (
                (1.0 - self.alpha) * heard + self.alpha * scores[subject]
            )
        else:
            scores[subject] = heard

    def exchange(self, a, b):
        one_minus_alpha = 1.0 - self.alpha
        snap_a = dict(self.scores[a])
        snap_b = dict(self.scores[b])
        for receiver, snapshot, peer_snap in (
            (a, snap_a, snap_b), (b, snap_b, snap_a)
        ):
            scores = self.scores[receiver]
            for subject, heard in peer_snap.items():
                if subject == a or subject == b:
                    continue
                if subject in snapshot:
                    scores[subject] = (
                        one_minus_alpha * heard
                        + self.alpha * snapshot[subject]
                    )
                else:
                    scores[subject] = heard

    def forget(self, subject):
        for node in self.scores:
            self.scores[node].pop(subject, None)
            self.own_sum[node].pop(subject, None)
            self.own_count[node].pop(subject, None)


@st.composite
def reputation_scenarios(draw):
    subjects = st.integers(min_value=0, max_value=7)
    nodes = st.integers(min_value=0, max_value=4)
    ratings = st.floats(min_value=0.0, max_value=5.0, allow_nan=False)
    ops = draw(st.lists(
        st.one_of(
            st.tuples(st.just("rate"), nodes, subjects, ratings),
            st.tuples(st.just("merge"), nodes, subjects, ratings),
            st.tuples(st.just("exchange"), nodes, nodes),
            st.tuples(st.just("forget"), subjects),
        ),
        max_size=40,
    ))
    return ops


class TestReputationBookEquivalence:
    @given(reputation_scenarios())
    @settings(max_examples=150, deadline=None)
    def test_array_books_match_dict_reference(self, ops):
        node_ids = list(range(5))
        system = ReputationSystem(PARAMS)
        for node in node_ids:
            system.book(node)
        reference = _ReferenceBooks(
            node_ids, PARAMS.alpha, PARAMS.default_rating
        )
        for op in ops:
            if op[0] == "rate":
                _, observer, subject, rating = op
                system.book(observer).rate_message(subject, rating)
                reference.rate(observer, subject, rating)
            elif op[0] == "merge":
                _, observer, subject, heard = op
                system.book(observer).merge_opinion(subject, heard)
                reference.merge(observer, subject, heard)
            elif op[0] == "exchange":
                _, a, b = op
                if a == b:
                    continue
                system.exchange(a, b)
                reference.exchange(a, b)
            else:
                _, subject = op
                system.forget_subject(subject)
                reference.forget(subject)
            for node in node_ids:
                book = system.book(node)
                known = book.known_subjects()
                assert set(known) == set(reference.scores[node])
                # known_subjects is sorted ascending by contract.
                assert list(known) == sorted(known)
                for subject in known:
                    assert book.score(subject) == (
                        reference.scores[node][subject]
                    ), f"score diverged at observer {node}"
                for subject, count in reference.own_count[node].items():
                    assert book.own_average(subject) == (
                        reference.own_sum[node][subject] / count
                    )
