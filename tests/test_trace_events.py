"""Tests for the event-trace schema and recorders (repro.trace)."""

import json

import pytest

from repro.errors import TraceError
from repro.trace.recorder import (
    NULL_RECORDER,
    JsonlTraceRecorder,
    TraceRecorder,
    derive_trace_path,
)
from repro.trace.schema import (
    RECORD_TYPES,
    SCHEMA_VERSION,
    iter_trace,
    validate_record,
)


class TestValidateRecord:
    def test_valid_records_for_every_type(self):
        # Build a minimal valid record for each registered type and
        # check none are rejected — the registry stays self-consistent.
        samples = {
            int: 1, float: 2.5, str: "x", bool: True, dict: {},
        }
        for kind, (required, _optional) in RECORD_TYPES.items():
            record = {"type": kind, "t": 0.0}
            for name, types in required.items():
                record[name] = samples[types[0]]
            validate_record(record)

    def test_rejects_non_dict(self):
        with pytest.raises(TraceError, match="JSON object"):
            validate_record(["delivery"])

    def test_rejects_missing_type(self):
        with pytest.raises(TraceError, match="no string 'type'"):
            validate_record({"t": 0.0})

    def test_rejects_unknown_type(self):
        with pytest.raises(TraceError, match="unknown record type"):
            validate_record({"type": "made-up", "t": 0.0})

    def test_rejects_missing_time(self):
        with pytest.raises(TraceError, match="'t' must be a number"):
            validate_record({"type": "contact-up", "a": 1, "b": 2})

    def test_rejects_boolean_time(self):
        with pytest.raises(TraceError, match="'t' must be a number"):
            validate_record({"type": "contact-up", "t": True, "a": 1, "b": 2})

    def test_rejects_missing_required_field(self):
        with pytest.raises(TraceError, match="missing required field 'b'"):
            validate_record({"type": "contact-up", "t": 1.0, "a": 1})

    def test_rejects_ill_typed_required_field(self):
        with pytest.raises(TraceError, match="field 'a'"):
            validate_record({"type": "contact-up", "t": 1.0,
                             "a": "one", "b": 2})

    def test_rejects_unknown_field(self):
        with pytest.raises(TraceError, match="unknown field 'extra'"):
            validate_record({"type": "contact-up", "t": 1.0,
                             "a": 1, "b": 2, "extra": 3})

    def test_rejects_bool_where_int_expected(self):
        # bool is a subclass of int; the schema must not accept it.
        with pytest.raises(TraceError, match="field 'a'"):
            validate_record({"type": "contact-up", "t": 1.0,
                             "a": True, "b": 2})

    def test_rejects_ill_typed_optional_field(self):
        with pytest.raises(TraceError, match="field 'reason'"):
            validate_record({"type": "contact-down", "t": 1.0,
                             "a": 1, "b": 2, "reason": 7})

    def test_accepts_optional_fields(self):
        validate_record({
            "type": "offer", "t": 5.0, "uuid": "u", "sender": 1,
            "receiver": 2, "role": "relay", "promise": 3.0, "prepay": 1.0,
        })


class TestIterTrace:
    def _write(self, path, lines):
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    def _header(self):
        return json.dumps(
            {"type": "trace-header", "t": 0.0, "schema": SCHEMA_VERSION}
        )

    def test_reads_records_in_order(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, [
            self._header(),
            json.dumps({"type": "contact-up", "t": 1.0, "a": 1, "b": 2}),
            json.dumps({"type": "contact-down", "t": 2.0, "a": 1, "b": 2}),
        ])
        records = list(iter_trace(path))
        assert [r["type"] for r in records] == [
            "trace-header", "contact-up", "contact-down",
        ]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TraceError, match="unreadable"):
            list(iter_trace(tmp_path / "absent.jsonl"))

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        with pytest.raises(TraceError, match="empty trace"):
            list(iter_trace(path))

    def test_missing_header_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, [
            json.dumps({"type": "contact-up", "t": 1.0, "a": 1, "b": 2}),
        ])
        with pytest.raises(TraceError, match="trace-header"):
            list(iter_trace(path))

    def test_future_schema_version_raises(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, [
            json.dumps({"type": "trace-header", "t": 0.0,
                        "schema": SCHEMA_VERSION + 1}),
        ])
        with pytest.raises(TraceError, match="not supported"):
            list(iter_trace(path))

    def test_malformed_json_names_the_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, [self._header(), "{broken"])
        with pytest.raises(TraceError, match=":2: malformed JSON"):
            list(iter_trace(path))

    def test_schema_violation_names_the_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, [
            self._header(),
            json.dumps({"type": "contact-up", "t": 1.0, "a": 1}),
        ])
        with pytest.raises(TraceError, match=":2:"):
            list(iter_trace(path))

    def test_validate_false_skips_schema_checks(self, tmp_path):
        path = tmp_path / "t.jsonl"
        self._write(path, [
            self._header(),
            json.dumps({"type": "contact-up", "t": 1.0, "a": 1}),
        ])
        records = list(iter_trace(path, validate=False))
        assert len(records) == 2


class TestRecorders:
    def test_null_recorder_is_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.emit({"type": "anything"})  # no-op, never raises
        NULL_RECORDER.close()

    def test_enabled_is_a_class_attribute(self):
        # The emission guard relies on this being resolvable without
        # instance dict lookups.
        assert TraceRecorder.enabled is False
        assert JsonlTraceRecorder.enabled is True

    def test_writes_header_on_construction(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceRecorder(path, meta={"scheme": "incentive",
                                            "seed": 3}) as recorder:
            assert recorder.records_written == 1
        records = list(iter_trace(path))
        assert records[0]["type"] == "trace-header"
        assert records[0]["schema"] == SCHEMA_VERSION
        assert records[0]["scheme"] == "incentive"
        assert records[0]["seed"] == 3

    def test_emitted_records_round_trip(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceRecorder(path) as recorder:
            recorder.emit({"type": "delivery", "t": 9.25,
                           "uuid": "m-1", "node": 4, "first": True})
        records = list(iter_trace(path))
        assert records[-1] == {"type": "delivery", "t": 9.25,
                               "uuid": "m-1", "node": 4, "first": True}

    def test_emit_after_close_raises(self, tmp_path):
        recorder = JsonlTraceRecorder(tmp_path / "t.jsonl")
        recorder.close()
        with pytest.raises(TraceError, match="already closed"):
            recorder.emit({"type": "delivery", "t": 0.0})

    def test_close_is_idempotent(self, tmp_path):
        recorder = JsonlTraceRecorder(tmp_path / "t.jsonl")
        recorder.close()
        recorder.close()

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        JsonlTraceRecorder(path).close()
        assert path.exists()

    def test_unopenable_path_raises(self, tmp_path):
        with pytest.raises(TraceError, match="cannot open"):
            JsonlTraceRecorder(tmp_path)  # a directory, not a file


class TestDeriveTracePath:
    def test_placeholders_are_substituted(self):
        assert derive_trace_path(
            "out/{scheme}/run-s{seed}.jsonl", scheme="chitchat", seed=4
        ) == "out/chitchat/run-s4.jsonl"

    def test_suffix_inserted_before_extension(self):
        assert derive_trace_path(
            "out/run.jsonl", scheme="incentive", seed=3
        ) == "out/run.incentive.s3.jsonl"

    def test_extensionless_base_gets_jsonl(self):
        assert derive_trace_path(
            "out/run", scheme="incentive", seed=1
        ) == "out/run.incentive.s1.jsonl"

    def test_distinct_runs_never_collide(self):
        paths = {
            derive_trace_path("t.jsonl", scheme=scheme, seed=seed)
            for scheme in ("incentive", "chitchat")
            for seed in (1, 2, 3)
        }
        assert len(paths) == 6
