"""Property-based tests (hypothesis) for core invariants."""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from tests.helpers import make_message
from repro.core.incentive import (
    IncentiveParams,
    software_incentive,
    tag_incentive,
    total_promise,
)
from repro.core.ledger import TokenLedger
from repro.core.reputation import ReputationBook
from repro.errors import BufferError_, InsufficientTokensError
from repro.messages.message import Priority
from repro.mobility.contact import pairs_in_range
from repro.network.buffer import DropPolicy, MessageBuffer
from repro.routing.chitchat import InterestRecord, InterestTable
from repro.sim.engine import Engine

PARAMS = IncentiveParams()


# ----------------------------------------------------------------------
# Ledger: token conservation under arbitrary operation sequences
# ----------------------------------------------------------------------
@st.composite
def ledger_operations(draw):
    n_accounts = draw(st.integers(min_value=2, max_value=5))
    endowments = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1000.0,
                      allow_nan=False, allow_infinity=False),
            min_size=n_accounts, max_size=n_accounts,
        )
    )
    operations = draw(
        st.lists(
            st.tuples(
                st.sampled_from(["transfer", "escrow-capture",
                                 "escrow-release"]),
                st.integers(min_value=0, max_value=n_accounts - 1),
                st.integers(min_value=0, max_value=n_accounts - 1),
                st.floats(min_value=0.0, max_value=500.0,
                          allow_nan=False, allow_infinity=False),
            ),
            max_size=30,
        )
    )
    return endowments, operations


class TestLedgerProperties:
    @given(ledger_operations())
    @settings(max_examples=100, deadline=None)
    def test_total_supply_invariant(self, scenario):
        endowments, operations = scenario
        ledger = TokenLedger()
        for node, amount in enumerate(endowments):
            ledger.open_account(node, amount)
        expected = sum(endowments)
        for kind, payer, payee, amount in operations:
            if payer == payee:
                continue
            try:
                if kind == "transfer":
                    ledger.transfer(payer, payee, amount, time=0.0)
                elif kind == "escrow-capture":
                    hold = ledger.escrow(payer, amount, time=0.0)
                    ledger.capture(hold, payee, time=1.0)
                else:
                    hold = ledger.escrow(payer, amount, time=0.0)
                    ledger.release(hold, time=1.0)
            except InsufficientTokensError:
                pass
            assert ledger.total_supply() == pytest.approx(expected)
            assert all(b >= -1e-9 for b in ledger.balances().values())


# ----------------------------------------------------------------------
# Buffer: occupancy never exceeds capacity; accounting is exact
# ----------------------------------------------------------------------
class TestBufferProperties:
    @given(
        st.integers(min_value=100, max_value=5_000),
        st.lists(st.integers(min_value=1, max_value=2_000),
                 min_size=1, max_size=40),
        st.sampled_from(list(DropPolicy)),
    )
    @settings(max_examples=100, deadline=None)
    def test_occupancy_bounded_and_exact(self, capacity, sizes, policy):
        buffer = MessageBuffer(capacity, policy)
        resident = {}
        for index, size in enumerate(sizes):
            message = make_message(size=size)
            try:
                evicted = buffer.add(message, now=float(index))
            except BufferError_:
                continue
            for victim in evicted:
                del resident[victim.uuid]
            resident[message.uuid] = size
            assert buffer.used <= capacity
            assert buffer.used == sum(resident.values())
            assert len(buffer) == len(resident)


# ----------------------------------------------------------------------
# ChitChat weights: decay/growth keep weights in [0, 1]; decay is
# monotone toward the fixed point
# ----------------------------------------------------------------------
class TestWeightProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.booleans(),
        st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
        st.floats(min_value=1e-4, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_decay_bounded_and_contracting(self, weight, direct, dt, beta):
        table = InterestTable([])
        table._records["kw"] = InterestRecord(weight, direct, 0.0)
        table.decay(dt, set(), beta=beta, prune_below=0.0)
        record = table.record("kw")
        new_weight = record.weight if record is not None else 0.0
        assert 0.0 <= new_weight <= 1.0
        fixed_point = 0.5 if direct else 0.0
        assert (
            abs(new_weight - fixed_point) <= abs(weight - fixed_point) + 1e-12
        )

    @given(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_growth_bounded_and_monotone(self, mine, peers, elapsed):
        table = InterestTable([])
        table._records["kw"] = InterestRecord(mine, False, 0.0)
        peer = InterestTable([])
        peer._records["kw"] = InterestRecord(peers, True, 0.0)
        table.grow_from(peer, now=1.0, elapsed=elapsed,
                        growth_scale=0.01, elapsed_cap=600.0)
        new_weight = table.weight("kw")
        assert mine - 1e-12 <= new_weight <= 1.0


# ----------------------------------------------------------------------
# Incentive formulas: promises bounded by I_m, monotone in quality
# ----------------------------------------------------------------------
class TestIncentiveProperties:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.sampled_from(list(Priority)),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
        st.integers(min_value=1, max_value=10_000),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_software_incentive_bounded(
        self, sender_role, receiver_role, priority, ratio, size, quality
    ):
        value = software_incentive(
            PARAMS,
            sender_role=sender_role,
            receiver_role=receiver_role,
            priority=priority,
            interest_ratio=ratio,
            size=size,
            max_size=10_000,
            quality=quality,
            max_quality=1.0,
        )
        assert 0.0 <= value <= PARAMS.max_incentive + 1e-9

    @given(st.integers(min_value=0, max_value=100))
    @settings(max_examples=50, deadline=None)
    def test_tag_incentive_bounded_and_monotone(self, tags):
        value = tag_incentive(PARAMS, tags)
        assert 0.0 <= value <= PARAMS.tag_cap
        assert tag_incentive(PARAMS, tags + 1) >= value

    @given(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_total_promise_capped(self, software, hardware):
        assert total_promise(PARAMS, software, hardware) <= PARAMS.max_incentive


# ----------------------------------------------------------------------
# Reputation: scores stay on the rating scale
# ----------------------------------------------------------------------
class TestReputationProperties:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["rate", "merge"]),
                st.integers(min_value=1, max_value=4),
                st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_scores_stay_on_scale(self, operations):
        book = ReputationBook(0, PARAMS)
        for kind, subject, value in operations:
            if kind == "rate":
                book.rate_message(subject, value)
            else:
                book.merge_opinion(subject, value)
            assert 0.0 <= book.score(subject) <= PARAMS.max_rating
            assert 0.0 <= book.award_multiplier(subject, []) <= 1.0


# ----------------------------------------------------------------------
# Engine: events always fire in nondecreasing time order
# ----------------------------------------------------------------------
class TestEngineProperties:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
            min_size=1, max_size=50,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_firing_order_is_chronological(self, times):
        engine = Engine()
        fired = []
        for time in times:
            engine.schedule_at(time, lambda t=time: fired.append(t))
        engine.run()
        assert fired == sorted(times)
        assert len(fired) == len(times)


# ----------------------------------------------------------------------
# Contact detection: grid search equals brute force
# ----------------------------------------------------------------------
class TestContactProperties:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=2, max_value=40),
        st.floats(min_value=5.0, max_value=400.0, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_grid_matches_brute_force(self, seed, count, radius):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(0.0, 1000.0, size=(count, 2))
        expected = {
            (i, j)
            for i in range(count)
            for j in range(i + 1, count)
            if float(np.hypot(*(positions[i] - positions[j]))) <= radius
        }
        assert pairs_in_range(positions, radius) == expected


# ----------------------------------------------------------------------
# End-to-end token conservation: a full incentive run never leaks credit
# ----------------------------------------------------------------------
class TestEndToEndTokenConservation:
    """The credit economy is closed: tokens only move, never mint/burn.

    After any incentive run, every token must be accounted for as either
    a live balance or an unsettled escrow hold ("recorded sinks"), and
    the whole must reconcile with the initial endowment — the guard
    against silent leaks in award/escrow/refund plumbing.
    """

    @pytest.mark.parametrize(
        "seed, selfish, malicious",
        [
            (1, 0.0, 0.0),
            (2, 0.3, 0.0),
            (3, 0.0, 0.3),
            (4, 0.2, 0.2),
        ],
    )
    def test_supply_plus_sinks_reconcile_with_endowment(
        self, seed, selfish, malicious
    ):
        from repro.experiments import ScenarioConfig, run_scenario

        config = ScenarioConfig.tiny(
            selfish_fraction=selfish, malicious_fraction=malicious
        )
        result = run_scenario(config, "incentive", seed=seed)
        ledger = result.router.ledger

        # Total supply (balances + escrow) equals the endowment.
        assert ledger.total_supply() == pytest.approx(
            ledger.total_endowment(), abs=1e-6
        )
        # Accounts open lazily (a node that never joins the protocol is
        # never endowed), but every opened account starts with exactly
        # the configured endowment.
        balances = ledger.balances()
        assert 0 < len(balances) <= config.n_nodes
        for node in balances:
            assert ledger.initial_balance(node) == pytest.approx(
                config.incentive.initial_tokens
            )

        # Per-account reconciliation against the transaction log: what
        # an account holds is its endowment plus settled net flow minus
        # whatever it still has locked in escrow.
        net = {node: 0.0 for node in ledger.balances()}
        for txn in ledger.transactions:
            net[txn.payer] -= txn.amount
            net[txn.payee] += txn.amount
        held = {
            node: ledger.initial_balance(node) + net[node]
            - ledger.balance(node)
            for node in net
        }
        for node, amount in held.items():
            assert amount >= -1e-9, f"node {node} holds negative escrow"
        assert sum(held.values()) == pytest.approx(
            ledger.escrowed_total(), abs=1e-6
        )
