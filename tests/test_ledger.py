"""Unit tests for the token ledger."""

import pytest

from repro.core.ledger import TokenLedger
from repro.errors import (
    ConfigurationError,
    InsufficientTokensError,
    LedgerError,
    UnknownAccountError,
)


@pytest.fixture
def ledger():
    book = TokenLedger()
    book.open_account(1, 100.0)
    book.open_account(2, 100.0)
    return book


class TestAccounts:
    def test_open_and_balance(self, ledger):
        assert ledger.balance(1) == 100.0
        assert ledger.initial_balance(1) == 100.0
        assert ledger.has_account(1)
        assert not ledger.has_account(3)

    def test_duplicate_account_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.open_account(1, 50.0)

    def test_negative_endowment_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenLedger().open_account(1, -1.0)

    def test_unknown_account_raises(self, ledger):
        with pytest.raises(UnknownAccountError):
            ledger.balance(99)
        with pytest.raises(UnknownAccountError):
            ledger.initial_balance(99)

    def test_can_pay(self, ledger):
        assert ledger.can_pay(1, 100.0)
        assert not ledger.can_pay(1, 100.01)


class TestTransfers:
    def test_transfer_moves_tokens(self, ledger):
        transaction = ledger.transfer(1, 2, 30.0, time=5.0, reason="award")
        assert ledger.balance(1) == 70.0
        assert ledger.balance(2) == 130.0
        assert transaction.amount == 30.0
        assert transaction.reason == "award"
        assert transaction.time == 5.0

    def test_insufficient_tokens_raise_and_leave_state_intact(self, ledger):
        with pytest.raises(InsufficientTokensError):
            ledger.transfer(1, 2, 150.0, time=0.0)
        assert ledger.balance(1) == 100.0
        assert ledger.balance(2) == 100.0
        assert ledger.transactions == ()

    def test_negative_amount_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.transfer(1, 2, -1.0, time=0.0)

    def test_self_transfer_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.transfer(1, 1, 1.0, time=0.0)

    def test_unknown_payee_rejected(self, ledger):
        with pytest.raises(UnknownAccountError):
            ledger.transfer(1, 99, 1.0, time=0.0)

    def test_zero_transfer_recorded(self, ledger):
        ledger.transfer(1, 2, 0.0, time=0.0, reason="zero-promise")
        assert len(ledger.transactions) == 1

    def test_total_supply_is_conserved(self, ledger):
        ledger.transfer(1, 2, 25.0, time=0.0)
        ledger.transfer(2, 1, 70.0, time=1.0)
        assert ledger.total_supply() == ledger.total_endowment() == 200.0

    def test_earnings(self, ledger):
        ledger.transfer(1, 2, 25.0, time=0.0)
        assert ledger.earnings(1) == -25.0
        assert ledger.earnings(2) == 25.0

    def test_volume_by_reason(self, ledger):
        ledger.transfer(1, 2, 10.0, time=0.0, reason="award")
        ledger.transfer(1, 2, 5.0, time=1.0, reason="award")
        ledger.transfer(2, 1, 3.0, time=2.0, reason="prepay")
        assert ledger.volume_by_reason() == {"award": 15.0, "prepay": 3.0}


class TestEscrow:
    def test_escrow_debits_payer_immediately(self, ledger):
        ledger.escrow(1, 40.0, time=0.0, reason="award")
        assert ledger.balance(1) == 60.0
        assert ledger.escrowed_total() == 40.0
        assert ledger.total_supply() == 200.0

    def test_capture_pays_the_payee(self, ledger):
        hold = ledger.escrow(1, 40.0, time=0.0, reason="award")
        transaction = ledger.capture(hold, 2, time=1.0)
        assert ledger.balance(2) == 140.0
        assert ledger.escrowed_total() == 0.0
        assert transaction.payer == 1
        assert transaction.payee == 2
        assert transaction.reason == "award"

    def test_release_refunds_the_payer(self, ledger):
        hold = ledger.escrow(1, 40.0, time=0.0)
        ledger.release(hold, time=1.0)
        assert ledger.balance(1) == 100.0
        assert ledger.escrowed_total() == 0.0
        # A released hold produces no transaction record.
        assert ledger.transactions == ()

    def test_escrow_insufficient_tokens(self, ledger):
        with pytest.raises(InsufficientTokensError):
            ledger.escrow(1, 150.0, time=0.0)

    def test_double_settle_rejected(self, ledger):
        hold = ledger.escrow(1, 10.0, time=0.0)
        ledger.capture(hold, 2, time=1.0)
        with pytest.raises(LedgerError):
            ledger.capture(hold, 2, time=2.0)
        with pytest.raises(LedgerError):
            ledger.release(hold, time=2.0)

    def test_escrowed_tokens_cannot_be_spent(self, ledger):
        ledger.escrow(1, 90.0, time=0.0)
        with pytest.raises(InsufficientTokensError):
            ledger.transfer(1, 2, 20.0, time=0.0)

    def test_conservation_across_mixed_operations(self, ledger):
        hold_a = ledger.escrow(1, 30.0, time=0.0)
        hold_b = ledger.escrow(2, 20.0, time=0.0)
        ledger.capture(hold_a, 2, time=1.0)
        ledger.release(hold_b, time=1.0)
        ledger.transfer(2, 1, 5.0, time=2.0)
        assert ledger.total_supply() == pytest.approx(200.0)
