"""Unit tests for the token ledger."""

import pytest

from repro.core.ledger import TokenLedger
from repro.errors import (
    ConfigurationError,
    InsufficientTokensError,
    LedgerError,
    UnknownAccountError,
)


@pytest.fixture
def ledger():
    book = TokenLedger()
    book.open_account(1, 100.0)
    book.open_account(2, 100.0)
    return book


class TestAccounts:
    def test_open_and_balance(self, ledger):
        assert ledger.balance(1) == 100.0
        assert ledger.initial_balance(1) == 100.0
        assert ledger.has_account(1)
        assert not ledger.has_account(3)

    def test_duplicate_account_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.open_account(1, 50.0)

    def test_negative_endowment_rejected(self):
        with pytest.raises(ConfigurationError):
            TokenLedger().open_account(1, -1.0)

    def test_unknown_account_raises(self, ledger):
        with pytest.raises(UnknownAccountError):
            ledger.balance(99)
        with pytest.raises(UnknownAccountError):
            ledger.initial_balance(99)

    def test_can_pay(self, ledger):
        assert ledger.can_pay(1, 100.0)
        assert not ledger.can_pay(1, 100.01)


class TestTransfers:
    def test_transfer_moves_tokens(self, ledger):
        transaction = ledger.transfer(1, 2, 30.0, time=5.0, reason="award")
        assert ledger.balance(1) == 70.0
        assert ledger.balance(2) == 130.0
        assert transaction.amount == 30.0
        assert transaction.reason == "award"
        assert transaction.time == 5.0

    def test_insufficient_tokens_raise_and_leave_state_intact(self, ledger):
        with pytest.raises(InsufficientTokensError):
            ledger.transfer(1, 2, 150.0, time=0.0)
        assert ledger.balance(1) == 100.0
        assert ledger.balance(2) == 100.0
        assert ledger.transactions == ()

    def test_negative_amount_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.transfer(1, 2, -1.0, time=0.0)

    def test_self_transfer_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.transfer(1, 1, 1.0, time=0.0)

    def test_unknown_payee_rejected(self, ledger):
        with pytest.raises(UnknownAccountError):
            ledger.transfer(1, 99, 1.0, time=0.0)

    def test_zero_transfer_recorded(self, ledger):
        ledger.transfer(1, 2, 0.0, time=0.0, reason="zero-promise")
        assert len(ledger.transactions) == 1

    def test_total_supply_is_conserved(self, ledger):
        ledger.transfer(1, 2, 25.0, time=0.0)
        ledger.transfer(2, 1, 70.0, time=1.0)
        assert ledger.total_supply() == ledger.total_endowment() == 200.0

    def test_earnings(self, ledger):
        ledger.transfer(1, 2, 25.0, time=0.0)
        assert ledger.earnings(1) == -25.0
        assert ledger.earnings(2) == 25.0

    def test_volume_by_reason(self, ledger):
        ledger.transfer(1, 2, 10.0, time=0.0, reason="award")
        ledger.transfer(1, 2, 5.0, time=1.0, reason="award")
        ledger.transfer(2, 1, 3.0, time=2.0, reason="prepay")
        assert ledger.volume_by_reason() == {"award": 15.0, "prepay": 3.0}


class TestEscrow:
    def test_escrow_debits_payer_immediately(self, ledger):
        ledger.escrow(1, 40.0, time=0.0, reason="award")
        assert ledger.balance(1) == 60.0
        assert ledger.escrowed_total() == 40.0
        assert ledger.total_supply() == 200.0

    def test_capture_pays_the_payee(self, ledger):
        hold = ledger.escrow(1, 40.0, time=0.0, reason="award")
        transaction = ledger.capture(hold, 2, time=1.0)
        assert ledger.balance(2) == 140.0
        assert ledger.escrowed_total() == 0.0
        assert transaction.payer == 1
        assert transaction.payee == 2
        assert transaction.reason == "award"

    def test_release_refunds_the_payer(self, ledger):
        hold = ledger.escrow(1, 40.0, time=0.0)
        ledger.release(hold, time=1.0)
        assert ledger.balance(1) == 100.0
        assert ledger.escrowed_total() == 0.0
        # A released hold produces no transaction record.
        assert ledger.transactions == ()

    def test_escrow_insufficient_tokens(self, ledger):
        with pytest.raises(InsufficientTokensError):
            ledger.escrow(1, 150.0, time=0.0)

    def test_double_settle_rejected(self, ledger):
        hold = ledger.escrow(1, 10.0, time=0.0)
        ledger.capture(hold, 2, time=1.0)
        with pytest.raises(LedgerError):
            ledger.capture(hold, 2, time=2.0)
        with pytest.raises(LedgerError):
            ledger.release(hold, time=2.0)

    def test_escrowed_tokens_cannot_be_spent(self, ledger):
        ledger.escrow(1, 90.0, time=0.0)
        with pytest.raises(InsufficientTokensError):
            ledger.transfer(1, 2, 20.0, time=0.0)

    def test_conservation_across_mixed_operations(self, ledger):
        hold_a = ledger.escrow(1, 30.0, time=0.0)
        hold_b = ledger.escrow(2, 20.0, time=0.0)
        ledger.capture(hold_a, 2, time=1.0)
        ledger.release(hold_b, time=1.0)
        ledger.transfer(2, 1, 5.0, time=2.0)
        assert ledger.total_supply() == pytest.approx(200.0)


class TestSettlementKeys:
    """Idempotent settlement: a key can pay out at most once."""

    def test_transfer_records_key(self, ledger):
        transaction = ledger.transfer(
            1, 2, 10.0, time=0.0, settlement_key="award:m1:2"
        )
        assert transaction.settlement_key == "award:m1:2"
        assert ledger.was_settled("award:m1:2")
        assert "award:m1:2" in ledger.settled_keys

    def test_duplicate_transfer_is_noop(self, ledger):
        ledger.transfer(1, 2, 10.0, time=0.0, settlement_key="k")
        duplicate = ledger.transfer(1, 2, 10.0, time=1.0,
                                    settlement_key="k")
        assert duplicate is None
        assert ledger.balance(1) == 90.0
        assert ledger.balance(2) == 110.0
        assert ledger.duplicate_settlements == 1
        assert len(ledger.transactions) == 1

    def test_capture_records_key(self, ledger):
        hold = ledger.escrow(1, 10.0, time=0.0)
        transaction = ledger.capture(hold, 2, time=1.0,
                                     settlement_key="prepay:m1:2")
        assert transaction.settlement_key == "prepay:m1:2"
        assert ledger.was_settled("prepay:m1:2")

    def test_duplicate_capture_refunds_payer(self, ledger):
        first = ledger.escrow(1, 10.0, time=0.0)
        ledger.capture(first, 2, time=1.0, settlement_key="k")
        # A retried delivery escrows again for the same settlement: the
        # duplicate capture must refund the payer, not pay the payee.
        second = ledger.escrow(1, 10.0, time=2.0)
        duplicate = ledger.capture(second, 2, time=3.0,
                                   settlement_key="k")
        assert duplicate is None
        assert ledger.balance(1) == 90.0
        assert ledger.balance(2) == 110.0
        assert ledger.escrowed_total() == 0.0
        assert ledger.duplicate_settlements == 1
        assert ledger.total_supply() == pytest.approx(200.0)

    def test_unkeyed_operations_unaffected(self, ledger):
        ledger.transfer(1, 2, 5.0, time=0.0)
        ledger.transfer(1, 2, 5.0, time=1.0)
        assert ledger.balance(2) == 110.0
        assert ledger.duplicate_settlements == 0

    def test_duplicate_checked_after_validation(self, ledger):
        ledger.transfer(1, 2, 5.0, time=0.0, settlement_key="k")
        with pytest.raises(UnknownAccountError):
            ledger.transfer(1, 99, 5.0, time=1.0, settlement_key="k")


class TestEscrowExpiry:
    def test_expired_hold_released(self, ledger):
        ledger.escrow(1, 25.0, time=0.0, expires_at=10.0)
        assert ledger.expire_holds(9.9) == 0.0
        assert ledger.expire_holds(10.0) == 25.0
        assert ledger.balance(1) == 100.0
        assert ledger.escrowed_total() == 0.0

    def test_unexpiring_holds_survive(self, ledger):
        ledger.escrow(1, 25.0, time=0.0)  # no expires_at
        assert ledger.expire_holds(1e9) == 0.0
        assert ledger.escrowed_total() == 25.0

    def test_expired_hold_cannot_be_captured(self, ledger):
        hold = ledger.escrow(1, 25.0, time=0.0, expires_at=10.0)
        ledger.expire_holds(10.0)
        with pytest.raises(LedgerError):
            ledger.capture(hold, 2, time=11.0)

    def test_hold_exists_tracks_the_lifecycle(self, ledger):
        hold = ledger.escrow(1, 25.0, time=0.0, expires_at=10.0)
        assert ledger.hold_exists(hold)
        ledger.expire_holds(10.0)
        assert not ledger.hold_exists(hold)

    def test_releasing_an_expired_hold_raises(self, ledger):
        # The abort path must guard with hold_exists(); a blind release
        # of a reclaimed hold is a bookkeeping bug and raises.
        hold = ledger.escrow(1, 25.0, time=0.0, expires_at=10.0)
        ledger.expire_holds(10.0)
        with pytest.raises(LedgerError):
            ledger.release(hold, time=11.0)
        assert ledger.balance(1) == 100.0  # refunded exactly once

    def test_release_all_drains_everything(self, ledger):
        ledger.escrow(1, 10.0, time=0.0)
        ledger.escrow(2, 20.0, time=0.0, expires_at=1e9)
        assert ledger.release_all(time=100.0) == 30.0
        assert ledger.escrowed_total() == 0.0
        assert ledger.balance(1) == 100.0
        assert ledger.balance(2) == 100.0
        assert ledger.release_all(time=101.0) == 0.0


class TestConservationUnderRandomFaultMixes:
    """Property-style: whatever interleaving of payments, retries,
    escrows, expiries, and releases a faulty network produces, the
    supply is conserved and no settlement key pays twice."""

    ACCOUNTS = range(10)

    def _random_workout(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        book = TokenLedger()
        for account in self.ACCOUNTS:
            book.open_account(account, 50.0)
        open_holds = []
        now = 0.0
        for step in range(400):
            now += float(rng.random())
            op = rng.integers(0, 5)
            payer, payee = rng.choice(len(self.ACCOUNTS), 2,
                                      replace=False)
            amount = float(rng.integers(1, 10))
            # Keys repeat deliberately: retried settlements are the norm
            # under faults, and only the first attempt may pay.
            key = f"settle:{int(rng.integers(0, 60))}"
            try:
                if op == 0:
                    book.transfer(int(payer), int(payee), amount,
                                  time=now, settlement_key=key)
                elif op == 1:
                    expires = (now + float(rng.integers(1, 5))
                               if rng.random() < 0.5 else None)
                    open_holds.append(
                        (book.escrow(int(payer), amount, time=now,
                                     expires_at=expires), int(payee), key)
                    )
                elif op == 2 and open_holds:
                    hold, holder, hold_key = open_holds.pop()
                    book.capture(hold, holder, time=now,
                                 settlement_key=hold_key)
                elif op == 3 and open_holds:
                    hold, _, _ = open_holds.pop()
                    book.release(hold, time=now)
                elif op == 4:
                    book.expire_holds(now)
            except InsufficientTokensError:
                pass
            except LedgerError:
                pass  # hold already expired out from under us
        book.release_all(time=now + 1.0)
        return book

    @pytest.mark.parametrize("seed", range(8))
    def test_invariants_hold(self, seed):
        book = self._random_workout(seed)
        assert book.total_supply() == pytest.approx(
            book.total_endowment(), abs=1e-9
        )
        assert book.escrowed_total() == 0.0
        assert all(b >= 0 for b in book.balances().values())
        keyed = [t.settlement_key for t in book.transactions
                 if t.settlement_key is not None]
        assert len(keyed) == len(set(keyed))

    def test_duplicates_actually_blocked(self):
        # The property is vacuous if no duplicate was ever attempted.
        total_blocked = sum(
            self._random_workout(seed).duplicate_settlements
            for seed in range(8)
        )
        assert total_blocked > 0
