"""Unit tests for contact traces."""

import pytest

from repro.errors import MobilityError
from repro.mobility.trace import Contact, ContactTrace


class TestContact:
    def test_duration(self):
        assert Contact(1.0, 4.0, 0, 1).duration == 3.0

    def test_pair_is_canonical(self):
        assert Contact(0.0, 1.0, 5, 2).pair == (2, 5)

    def test_zero_length_rejected(self):
        with pytest.raises(MobilityError):
            Contact(1.0, 1.0, 0, 1)

    def test_reversed_interval_rejected(self):
        with pytest.raises(MobilityError):
            Contact(2.0, 1.0, 0, 1)

    def test_self_contact_rejected(self):
        with pytest.raises(MobilityError):
            Contact(0.0, 1.0, 3, 3)


class TestContactTrace:
    def test_contacts_sorted_by_start(self):
        trace = ContactTrace([
            Contact(5.0, 6.0, 0, 1),
            Contact(1.0, 2.0, 2, 3),
        ])
        assert [c.start for c in trace] == [1.0, 5.0]

    def test_add_keeps_order(self):
        trace = ContactTrace([Contact(5.0, 6.0, 0, 1)])
        trace.add(Contact(1.0, 2.0, 0, 2))
        assert [c.start for c in trace] == [1.0, 5.0]

    def test_events_alternate_up_down(self):
        trace = ContactTrace([Contact(0.0, 10.0, 0, 1)])
        assert list(trace.events()) == [
            (0.0, "up", (0, 1)),
            (10.0, "down", (0, 1)),
        ]

    def test_simultaneous_down_sorts_before_up(self):
        trace = ContactTrace([
            Contact(0.0, 5.0, 0, 1),
            Contact(5.0, 10.0, 0, 1),
        ])
        kinds = [kind for _, kind, _ in trace.events()]
        assert kinds == ["up", "down", "up", "down"]

    def test_duration_and_total_contact_time(self):
        trace = ContactTrace([
            Contact(0.0, 4.0, 0, 1),
            Contact(2.0, 8.0, 1, 2),
        ])
        assert trace.duration() == 8.0
        assert trace.total_contact_time() == 10.0

    def test_empty_trace(self):
        trace = ContactTrace()
        assert len(trace) == 0
        assert trace.duration() == 0.0
        assert list(trace.events()) == []

    def test_contacts_per_pair(self):
        trace = ContactTrace([
            Contact(0.0, 1.0, 0, 1),
            Contact(2.0, 3.0, 0, 1),
            Contact(0.0, 1.0, 1, 2),
        ])
        assert trace.contacts_per_pair() == {(0, 1): 2, (1, 2): 1}

    def test_restricted_to(self):
        trace = ContactTrace([
            Contact(0.0, 1.0, 0, 1),
            Contact(0.0, 1.0, 1, 2),
            Contact(0.0, 1.0, 2, 3),
        ])
        sub = trace.restricted_to({1, 2})
        assert [c.pair for c in sub] == [(1, 2)]

    def test_indexing(self):
        contact = Contact(0.0, 1.0, 0, 1)
        trace = ContactTrace([contact])
        assert trace[0] is contact


class TestSerialisation:
    def test_round_trip(self, tmp_path):
        trace = ContactTrace([
            Contact(0.0, 4.5, 0, 1),
            Contact(2.25, 8.0, 1, 2),
        ])
        path = tmp_path / "trace.jsonl"
        trace.save(path)
        loaded = ContactTrace.load(path)
        assert [(c.start, c.end, c.pair) for c in loaded] == [
            (c.start, c.end, c.pair) for c in trace
        ]

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            '{"start": 0.0, "end": 1.0, "a": 0, "b": 1}\n\n'
        )
        assert len(ContactTrace.load(path)) == 1

    def test_malformed_line_reports_location(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"start": 0.0}\n')
        with pytest.raises(MobilityError, match="trace.jsonl:1"):
            ContactTrace.load(path)


class TestNpzSerialisation:
    def test_round_trip_is_bit_exact(self, tmp_path):
        # Values chosen to be awkward in decimal: npz stores raw float64
        # columns, so they must survive without any rounding at all.
        trace = ContactTrace([
            Contact(0.1 + 0.2, 1.0 / 3.0 + 7.0, 0, 1),
            Contact(2.25, 8.0000000001, 1, 2),
        ])
        path = tmp_path / "trace.npz"
        trace.save_npz(path)
        loaded = ContactTrace.load_npz(path)
        assert [(c.start, c.end, c.pair) for c in loaded] == [
            (c.start, c.end, c.pair) for c in trace
        ]

    def test_exact_path_is_used(self, tmp_path):
        # numpy's savez appends ".npz" when given a bare filename; the
        # trace writer must honour the requested path verbatim.
        path = tmp_path / "trace.cache"
        ContactTrace([Contact(0.0, 1.0, 0, 1)]).save_npz(path)
        assert path.exists()
        assert len(ContactTrace.load_npz(path)) == 1

    def test_empty_trace_round_trips(self, tmp_path):
        path = tmp_path / "empty.npz"
        ContactTrace().save_npz(path)
        assert len(ContactTrace.load_npz(path)) == 0

    def test_malformed_file_raises_mobility_error(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"definitely not an npz archive")
        with pytest.raises(MobilityError):
            ContactTrace.load_npz(path)

    def test_missing_file_raises_mobility_error(self, tmp_path):
        with pytest.raises(MobilityError):
            ContactTrace.load_npz(tmp_path / "absent.npz")
