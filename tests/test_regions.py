"""Spatial region sharding: unit tests and the determinism contract.

The contract (see :mod:`repro.mobility.regions`): contact detection
over 1 region, N regions, and N regions fanned out over a process pool
produces **bit-identical** contact traces — same pairs, same floats —
for every mobility model.  Region ownership (lower-id endpoint's strip)
plus a one-radius halo guarantees each in-range pair is found exactly
once.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MobilityError
from repro.mobility.contact import detect_contacts, pair_arrays
from repro.mobility.regions import (
    RegionGrid,
    detect_contacts_sharded,
    make_model,
    region_pair_arrays,
    sharded_pair_arrays,
)
from repro.sim.rng import RandomStreams

AREA = (600.0, 400.0)
RADIUS = 50.0


def _positions(n, seed, area=AREA):
    rng = np.random.default_rng(seed)
    return rng.uniform((0.0, 0.0), area, size=(n, 2))


class TestRegionGrid:
    def test_bounds_partition_the_arena(self):
        grid = RegionGrid(AREA, 4)
        assert grid.n_regions == 4
        edges = [grid.bounds(r) for r in range(4)]
        assert edges[0][0] == 0.0
        assert edges[-1][1] == pytest.approx(AREA[0])
        for (_, hi), (lo, _) in zip(edges, edges[1:]):
            assert hi == pytest.approx(lo)

    def test_min_width_caps_region_count(self):
        # 600 m wide / 100 m min width -> at most 6 strips.
        grid = RegionGrid(AREA, 64, min_width=100.0)
        assert grid.n_regions == 6
        assert grid.strip_width >= 100.0

    def test_single_region_always_allowed(self):
        grid = RegionGrid(AREA, 1, min_width=10_000.0)
        assert grid.n_regions == 1

    def test_region_of_clips_out_of_range_positions(self):
        grid = RegionGrid(AREA, 3)
        x = np.asarray([-5.0, 0.0, AREA[0] - 1e-9, AREA[0] + 5.0])
        regions = grid.region_of_x(x)
        assert regions.tolist() == [0, 0, 2, 2]

    def test_halo_members(self):
        grid = RegionGrid((300.0, 100.0), 3)
        positions = np.asarray([
            [40.0, 0.0],    # region 0, inside halo of region 1 (>= 100-50)
            [95.0, 0.0],    # region 0, in halo of 1
            [150.0, 0.0],   # region 1 proper
            [205.0, 0.0],   # region 2, in halo of 1
            [260.0, 0.0],   # region 2, outside halo of 1
        ])
        members = grid.halo_members(positions, 1, 50.0)
        assert members.tolist() == [1, 2, 3]

    def test_invalid_arguments(self):
        with pytest.raises(MobilityError):
            RegionGrid((0.0, 100.0), 2)
        with pytest.raises(MobilityError):
            RegionGrid(AREA, 0)
        with pytest.raises(MobilityError):
            RegionGrid(AREA, 2, min_width=-1.0)
        with pytest.raises(MobilityError):
            RegionGrid(AREA, 2).bounds(5)


class TestPairOwnership:
    @given(
        n=st.integers(min_value=0, max_value=120),
        seed=st.integers(min_value=0, max_value=1000),
        regions=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_sharded_pairs_equal_global_pairs(self, n, seed, regions):
        """Union over regions == the single-sweep pair set, exactly."""
        positions = _positions(n, seed)
        grid = RegionGrid(AREA, regions, min_width=RADIUS)
        global_a, global_b = pair_arrays(positions, RADIUS)
        shard_a, shard_b = sharded_pair_arrays(positions, RADIUS, grid)
        want = sorted(zip(global_a.tolist(), global_b.tolist()))
        got = sorted(zip(shard_a.tolist(), shard_b.tolist()))
        assert got == want

    @given(
        n=st.integers(min_value=2, max_value=80),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_each_pair_owned_by_exactly_one_region(self, n, seed):
        positions = _positions(n, seed)
        grid = RegionGrid(AREA, 5, min_width=RADIUS)
        seen = {}
        for region in range(grid.n_regions):
            node_a, node_b = region_pair_arrays(
                positions, RADIUS, grid, region
            )
            for pair in zip(node_a.tolist(), node_b.tolist()):
                assert pair not in seen, (
                    f"pair {pair} owned by both region "
                    f"{seen[pair]} and {region}"
                )
                seen[pair] = region
        global_a, global_b = pair_arrays(positions, RADIUS)
        assert len(seen) == global_a.size

    def test_empty_region_contributes_nothing(self):
        grid = RegionGrid(AREA, 4, min_width=RADIUS)
        positions = np.asarray([[10.0, 10.0], [20.0, 10.0]])  # region 0
        for region in range(1, grid.n_regions):
            node_a, node_b = region_pair_arrays(
                positions, RADIUS, grid, region
            )
            assert node_a.size == 0


class TestShardingDeterminism:
    """1 region vs N regions vs parallel: bit-identical traces."""

    KW = dict(
        n_nodes=40, area=AREA, seed=9, radius=RADIUS,
        duration=300.0, scan_interval=10.0,
    )

    @pytest.mark.parametrize(
        "kind", ("random-waypoint", "random-walk", "manhattan")
    )
    def test_serial_sharded_matches_classic_detector(self, kind):
        rng = RandomStreams(self.KW["seed"]).get("mobility")
        model = make_model(kind, self.KW["n_nodes"], AREA, rng)
        classic = detect_contacts(
            model, radius=RADIUS,
            duration=self.KW["duration"],
            scan_interval=self.KW["scan_interval"],
        )
        sharded = detect_contacts_sharded(kind=kind, regions=6, **self.KW)
        assert sharded.contacts == classic.contacts

    @pytest.mark.parametrize(
        "kind", ("random-waypoint", "random-walk", "manhattan")
    )
    def test_one_region_matches_many_regions(self, kind):
        one = detect_contacts_sharded(kind=kind, regions=1, **self.KW)
        many = detect_contacts_sharded(kind=kind, regions=8, **self.KW)
        assert one.contacts == many.contacts

    def test_parallel_workers_match_serial(self):
        serial = detect_contacts_sharded(
            kind="random-waypoint", regions=6, workers=1, **self.KW
        )
        fanned = detect_contacts_sharded(
            kind="random-waypoint", regions=6, workers=3, **self.KW
        )
        assert fanned.contacts == serial.contacts

    def test_worker_surplus_is_harmless(self):
        """More workers than regions must not change anything."""
        serial = detect_contacts_sharded(
            kind="random-walk", regions=2, workers=1, **self.KW
        )
        fanned = detect_contacts_sharded(
            kind="random-walk", regions=2, workers=8, **self.KW
        )
        assert fanned.contacts == serial.contacts
