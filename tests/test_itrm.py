"""Unit tests for the ITRM iterative trust algorithm."""

import pytest

from repro.core.itrm import RatingGraph, iterative_trust
from repro.errors import ConfigurationError


def honest_graph():
    """Three honest raters agreeing that subject 10 is good, 11 is bad."""
    graph = RatingGraph()
    for rater in (1, 2, 3):
        graph.add_rating(rater, 10, 4.5)
        graph.add_rating(rater, 11, 0.5)
    return graph


class TestRatingGraph:
    def test_add_and_query(self):
        graph = RatingGraph()
        graph.add_rating(1, 10, 4.0)
        assert graph.edge(1, 10) == 4.0
        assert graph.raters() == (1,)
        assert graph.subjects() == (10,)
        assert len(graph) == 1

    def test_repeat_rating_folds_with_fading(self):
        graph = RatingGraph(fading=1.0)
        graph.add_rating(1, 10, 4.0)
        graph.add_rating(1, 10, 2.0)
        # (2 + 1*4) / (1 + 1) = 3.0
        assert graph.edge(1, 10) == pytest.approx(3.0)

    def test_zero_fading_keeps_only_latest(self):
        graph = RatingGraph(fading=0.0)
        graph.add_rating(1, 10, 4.0)
        graph.add_rating(1, 10, 1.0)
        assert graph.edge(1, 10) == pytest.approx(1.0)

    def test_self_rating_rejected(self):
        with pytest.raises(ConfigurationError):
            RatingGraph().add_rating(1, 1, 3.0)

    def test_missing_edge_rejected(self):
        with pytest.raises(ConfigurationError):
            RatingGraph().edge(1, 2)

    def test_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            RatingGraph(fading=-0.1)


class TestIterativeTrust:
    def test_honest_consensus_reproduced(self):
        result = iterative_trust(honest_graph())
        assert result.subject_scores[10] == pytest.approx(4.5)
        assert result.subject_scores[11] == pytest.approx(0.5)
        assert all(
            weight == pytest.approx(1.0)
            for weight in result.rater_weights.values()
        )

    def test_lone_liar_is_discredited(self):
        graph = honest_graph()
        # Rater 9 praises the bad subject and smears the good one.
        graph.add_rating(9, 10, 0.0)
        graph.add_rating(9, 11, 5.0)
        result = iterative_trust(graph)
        assert result.rater_weights[9] < 0.3
        assert min(
            result.rater_weights[r] for r in (1, 2, 3)
        ) > result.rater_weights[9]
        # Scores stay close to the honest consensus.
        assert result.subject_scores[10] > 4.0
        assert result.subject_scores[11] < 1.0
        assert result.suspicious_raters(threshold=0.5) == (9,)

    def test_colluding_minority_outvoted(self):
        graph = RatingGraph()
        for rater in (1, 2, 3, 4, 5):          # honest majority
            graph.add_rating(rater, 10, 4.5)
            graph.add_rating(rater, 11, 0.5)
        for rater in (8, 9):                    # colluders praising 11
            graph.add_rating(rater, 10, 4.5)    # camouflage
            graph.add_rating(rater, 11, 5.0)
        result = iterative_trust(graph)
        # The colluders' praise of 11 is damped by their low weight.
        naive = (0.5 * 5 + 5.0 * 2) / 7
        assert result.subject_scores[11] < naive
        assert max(result.rater_weights[r] for r in (8, 9)) < min(
            result.rater_weights[r] for r in (1, 2, 3, 4, 5)
        )

    def test_converges_and_reports_iterations(self):
        result = iterative_trust(honest_graph(), iterations=50)
        assert result.iterations < 50  # early convergence

    def test_all_raters_discredited_falls_back_to_mean(self):
        # Two raters in perfect disagreement about every subject.
        graph = RatingGraph()
        graph.add_rating(1, 10, 5.0)
        graph.add_rating(2, 10, 0.0)
        result = iterative_trust(graph, sharpness=8.0)
        assert 0.0 <= result.subject_scores[10] <= 5.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            iterative_trust(RatingGraph())
        with pytest.raises(ConfigurationError):
            iterative_trust(honest_graph(), max_rating=0.0)
        with pytest.raises(ConfigurationError):
            iterative_trust(honest_graph(), iterations=0)
        with pytest.raises(ConfigurationError):
            iterative_trust(honest_graph(), sharpness=0.0)


class TestItrmAsCollusionDefense:
    def test_itrm_beats_naive_average_under_collusion(self):
        """End-to-end: rebuild the rating graph from a collusion run and
        check ITRM separates malicious subjects better than averaging."""
        from repro.experiments.config import ScenarioConfig
        from repro.experiments.runner import run_scenario

        config = ScenarioConfig.tiny(malicious_fraction=0.3)
        result = run_scenario(config, "incentive-collusion", seed=3)
        reputation = result.router.reputation

        graph = RatingGraph()
        for observer in range(config.n_nodes):
            book = reputation.book(observer)
            for subject in book.known_subjects():
                own = book.own_average(subject)
                if own is not None:
                    graph.add_rating(observer, subject, own)
        if len(graph) == 0:
            pytest.skip("no first-hand ratings collected at tiny scale")
        itrm = iterative_trust(graph)

        def mean_over(nodes, table):
            values = [table[n] for n in nodes if n in table]
            return sum(values) / len(values) if values else None

        malicious = mean_over(result.malicious_ids, itrm.subject_scores)
        honest = mean_over(result.honest_ids, itrm.subject_scores)
        if malicious is None or honest is None:
            pytest.skip("population slice unrated at tiny scale")
        assert malicious < honest
