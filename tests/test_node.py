"""Unit tests for DTN node state."""

import pytest

from tests.helpers import make_message
from repro.errors import ConfigurationError
from repro.network.node import Node


class TestConstruction:
    def test_defaults(self):
        node = Node(3, ["flood", "fire"])
        assert node.node_id == 3
        assert node.role == 1
        assert node.interests == {"flood", "fire"}
        assert node.buffer.capacity == 250_000_000

    def test_invalid_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Node(-1, [])

    def test_invalid_role_rejected(self):
        with pytest.raises(ConfigurationError):
            Node(0, [], role=0)


class TestInterestPredicates:
    def test_destination_when_direct_interest_matches_tag(self):
        node = Node(0, ["flood"])
        assert node.is_interested_in(make_message(keywords=("flood", "fire")))

    def test_not_destination_without_overlap(self):
        node = Node(0, ["shelter"])
        assert not node.is_interested_in(make_message(keywords=("flood",)))

    def test_matching_interests(self):
        node = Node(0, ["flood", "fire", "shelter"])
        message = make_message(content=("flood", "fire"),
                               keywords=("flood", "fire"))
        assert node.matching_interests(message) == {"flood", "fire"}


class TestCustody:
    def test_originate_records_and_buffers(self):
        node = Node(2, [], buffer_capacity=10_000)
        message = make_message(source=2, size=100)
        node.originate(message, now=1.0)
        assert message.uuid in node.generated
        assert node.has_seen(message.uuid)
        assert message.uuid in node.buffer

    def test_originate_rejects_foreign_source(self):
        node = Node(2, [])
        with pytest.raises(ConfigurationError):
            node.originate(make_message(source=5), now=0.0)

    def test_accept_for_relay_marks_seen(self):
        node = Node(1, [], buffer_capacity=10_000)
        message = make_message(size=100)
        node.accept_for_relay(message, now=2.0)
        assert node.has_seen(message.uuid)
        assert message.uuid in node.buffer

    def test_first_delivery_recorded(self):
        node = Node(1, ["flood"])
        message = make_message(keywords=("flood",))
        assert node.accept_delivery(message, now=5.0) is True
        assert node.delivered[message.uuid] == 5.0

    def test_duplicate_delivery_ignored(self):
        node = Node(1, ["flood"])
        message = make_message(keywords=("flood",))
        node.accept_delivery(message, now=5.0)
        assert node.accept_delivery(message.copy_for_transfer(), now=9.0) is False
        assert node.delivered[message.uuid] == 5.0
