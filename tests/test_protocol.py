"""Unit/integration tests for the incentive + reputation protocol."""

import pytest

from tests.helpers import contact, make_message, make_world, trace_of
from repro.agents.behaviors import BehaviorProfile
from repro.core.enrichment import EnrichmentPolicy
from repro.core.incentive import IncentiveParams
from repro.core.protocol import IncentiveChitChatRouter
from repro.core.reputation import RatingModel
from repro.errors import ConfigurationError
from repro.messages.keywords import KeywordUniverse
from repro.messages.message import Priority


def make_protocol(**overrides):
    params = overrides.pop("params", IncentiveParams(initial_tokens=100.0))
    defaults = dict(
        params=params,
        rating_model=RatingModel(params, noise=0.0, confidence_low=1.0),
    )
    defaults.update(overrides)
    return IncentiveChitChatRouter(**defaults)


def deliver_once(router, *, tokens=100.0, interests=None, size=100):
    """Run one source -> destination contact and return (world, message)."""
    interests = interests if interests is not None else {0: [], 1: ["flood"]}
    world = make_world(interests, router)
    message = make_message(source=0, size=size, keywords=("flood",),
                           content=("flood",))
    world.inject_message(message)
    world.load_contact_trace(trace_of(contact(10.0, 100.0, 0, 1)))
    world.run(200.0)
    return world, message


class TestAccounts:
    def test_accounts_open_with_endowment(self):
        router = make_protocol()
        world, _ = deliver_once(router)
        assert router.ledger.initial_balance(0) == 100.0
        assert router.ledger.initial_balance(1) == 100.0

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            make_protocol(relay_rating_probability=1.5)
        with pytest.raises(ConfigurationError):
            make_protocol(destination_rating_probability=-0.1)


class TestDeliveryPayments:
    def test_destination_pays_deliverer(self):
        router = make_protocol()
        world, message = deliver_once(router)
        assert message.uuid in world.node(1).delivered
        assert router.ledger.balance(1) < 100.0
        assert router.ledger.balance(0) > 100.0
        assert router.ledger.total_supply() == pytest.approx(200.0)

    def test_payment_recorded_with_reason(self):
        router = make_protocol()
        deliver_once(router)
        reasons = {t.reason for t in router.ledger.transactions}
        assert "delivery-award" in reasons

    def test_broke_destination_cannot_receive(self):
        router = make_protocol(params=IncentiveParams(initial_tokens=0.0))
        world, message = deliver_once(router)
        assert message.uuid not in world.node(1).delivered
        assert world.metrics.blocked_no_tokens >= 1
        assert world.metrics.transfers_completed == 0

    def test_first_deliverer_only_is_paid(self):
        router = make_protocol()
        world = make_world({0: [], 1: [], 2: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",),
                               content=("flood",))
        world.inject_message(message)
        # Source delivers directly at t=10; node 1 (who got a copy in a
        # concurrent contact) meets the destination later: no second sale.
        world.load_contact_trace(trace_of(
            contact(10.0, 50.0, 0, 2),
            contact(10.0, 50.0, 0, 1),
            contact(100.0, 150.0, 1, 2),
        ))
        world.run(200.0)
        awards = [
            t for t in router.ledger.transactions
            if t.reason == "delivery-award" and t.payer == 2
        ]
        assert len(awards) == 1

    def test_award_scaled_by_reputation(self):
        # A deliverer with rock-bottom reputation earns less than one
        # with a perfect record for the identical message.
        for score, bucket in ((0.5, "low"), (5.0, "high")):
            router = make_protocol()
            world = make_world({0: [], 1: ["flood"]}, router)
            router.reputation.book(1).rate_message(0, score)
            message = make_message(source=0, size=100, keywords=("flood",),
                                   content=("flood",))
            world.inject_message(message)
            world.load_contact_trace(trace_of(contact(10.0, 100.0, 0, 1)))
            world.run(200.0)
            earned = router.ledger.balance(0) - 100.0
            if bucket == "low":
                low_earned = earned
            else:
                high_earned = earned
        assert high_earned > low_earned > 0.0


class TestRelayEconomics:
    def test_relay_receives_promise_for_later_collection(self):
        router = make_protocol()
        world = make_world({0: [], 1: [], 2: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",),
                               content=("flood",))
        world.inject_message(message)
        # Give node 1 transient interest first so it qualifies as relay.
        world.load_contact_trace(trace_of(
            contact(10.0, 200.0, 1, 2),
            contact(300.0, 400.0, 0, 1),
        ))
        world.run(500.0)
        assert message.uuid in world.node(1).buffer
        assert router.promise_held(1, message.uuid) > 0.0

    def test_relay_prepays_above_threshold(self):
        params = IncentiveParams(
            initial_tokens=100.0, relay_threshold=0.05,
            relay_prepay_fraction=0.5,
        )
        router = make_protocol(params=params)
        world = make_world({0: [], 1: [], 2: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",),
                               content=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 200.0, 1, 2),
            contact(300.0, 400.0, 0, 1),
        ))
        world.run(500.0)
        prepays = [
            t for t in router.ledger.transactions
            if t.reason == "relay-prepay"
        ]
        assert len(prepays) == 1
        assert prepays[0].payer == 1
        assert prepays[0].payee == 0

    def test_no_prepay_below_threshold(self):
        params = IncentiveParams(initial_tokens=100.0, relay_threshold=0.99)
        router = make_protocol(params=params)
        world = make_world({0: [], 1: [], 2: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",),
                               content=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 200.0, 1, 2),
            contact(300.0, 400.0, 0, 1),
        ))
        world.run(500.0)
        assert not any(
            t.reason == "relay-prepay" for t in router.ledger.transactions
        )

    def test_full_cycle_relay_earns_from_destination(self):
        router = make_protocol()
        world = make_world({0: [], 1: [], 2: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",),
                               content=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 200.0, 1, 2),     # 1 acquires transient interest
            contact(300.0, 400.0, 0, 1),    # source -> relay
            contact(500.0, 600.0, 1, 2),    # relay -> destination, paid
        ))
        world.run(700.0)
        assert message.uuid in world.node(2).delivered
        assert router.ledger.balance(1) > 100.0 - 1e-9  # earned net
        assert router.ledger.balance(2) < 100.0          # paid
        assert router.ledger.total_supply() == pytest.approx(300.0)


class TestEnrichmentAndTagIncentives:
    def _enriching_router(self, universe, malicious=False):
        params = IncentiveParams(initial_tokens=100.0)
        return IncentiveChitChatRouter(
            params=params,
            rating_model=RatingModel(params, noise=0.0, confidence_low=1.0),
            enrichment=EnrichmentPolicy(
                universe, honest_probability=1.0, malicious_probability=1.0,
            ),
        )

    def test_honest_relay_adds_relevant_tags(self, universe):
        router = self._enriching_router(universe)
        world = make_world({0: [], 1: [], 2: ["flood"]}, router)
        message = make_message(
            source=0, size=100,
            content=("flood", "fire", "shelter"), keywords=("flood",),
        )
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 200.0, 1, 2),
            contact(300.0, 400.0, 0, 1),
        ))
        world.run(500.0)
        copy = world.node(1).buffer.get(message.uuid)
        added = copy.added_tags()
        assert added
        assert all(copy.is_relevant(a.keyword) for a in added)
        assert world.metrics.enrichment_tags == len(added)
        assert world.metrics.enrichment_relevant == len(added)

    def test_malicious_relay_adds_irrelevant_tags(self, universe):
        router = self._enriching_router(universe)
        bad = BehaviorProfile(malicious=True)
        world = make_world(
            {0: [], 1: [], 2: ["flood"]}, router, behaviors={1: bad},
        )
        message = make_message(source=0, size=100,
                               content=("flood",), keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 200.0, 1, 2),
            contact(300.0, 400.0, 0, 1),
        ))
        world.run(500.0)
        copy = world.node(1).buffer.get(message.uuid)
        added = copy.added_tags()
        assert added
        assert all(not copy.is_relevant(a.keyword) for a in added)
        assert world.metrics.enrichment_relevant == 0

    def test_destination_pays_extra_for_matching_added_tags(self, universe):
        # Same scenario twice: once with enrichment off, once with a
        # relay that adds the tag the destination subscribes to.  The
        # enriching deliverer must earn strictly more.
        earnings = {}
        for label, enrich in (("plain", None), ("enriched", True)):
            params = IncentiveParams(initial_tokens=100.0)
            router = IncentiveChitChatRouter(
                params=params,
                rating_model=RatingModel(params, noise=0.0,
                                         confidence_low=1.0),
                enrichment=(
                    EnrichmentPolicy(universe, honest_probability=1.0)
                    if enrich else None
                ),
            )
            world = make_world({0: [], 1: [], 2: ["flood", "fire"]}, router)
            message = make_message(
                source=0, size=100,
                content=("flood", "fire"), keywords=("flood",),
            )
            world.inject_message(message)
            world.load_contact_trace(trace_of(
                contact(10.0, 200.0, 1, 2),
                contact(300.0, 400.0, 0, 1),
                contact(500.0, 600.0, 1, 2),
            ))
            world.run(700.0)
            assert message.uuid in world.node(2).delivered
            earnings[label] = router.ledger.balance(1) - 100.0
        assert earnings["enriched"] > earnings["plain"]


class TestRatings:
    def test_destination_rates_source(self):
        router = make_protocol()
        world, message = deliver_once(router)
        book = router.reputation.book(1)
        assert book.has_opinion(0)
        # Perfect tags + quality 0.8 with noise-free rater.
        assert book.score(0) == pytest.approx(0.5 * 5.0 + 0.5 * 4.0)

    def test_relay_attaches_rating_to_copy(self):
        router = make_protocol(relay_rating_probability=1.0)
        world = make_world({0: [], 1: [], 2: ["flood"]}, router)
        message = make_message(source=0, size=100, keywords=("flood",),
                               content=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 200.0, 1, 2),
            contact(300.0, 400.0, 0, 1),
        ))
        world.run(500.0)
        copy = world.node(1).buffer.get(message.uuid)
        assert 1 in copy.path_ratings

    def test_reputation_gossip_on_contact(self):
        router = make_protocol()
        world = make_world({0: [], 1: [], 2: []}, router)
        router.reputation.book(0).rate_message(9, 1.0)
        world.load_contact_trace(trace_of(contact(10.0, 20.0, 0, 1)))
        world.run(50.0)
        assert router.reputation.book(1).score(9) == pytest.approx(1.0)

    def test_malicious_nodes_get_flagged_after_delivery(self, universe):
        params = IncentiveParams(initial_tokens=100.0)
        router = IncentiveChitChatRouter(
            params=params,
            rating_model=RatingModel(params, noise=0.0, confidence_low=1.0),
            enrichment=EnrichmentPolicy(
                universe, honest_probability=0.0, malicious_probability=1.0,
            ),
        )
        bad = BehaviorProfile(malicious=True)
        world = make_world(
            {0: [], 1: [], 2: ["flood"]}, router, behaviors={1: bad},
        )
        message = make_message(source=0, size=100,
                               content=("flood",), keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 200.0, 1, 2),
            contact(300.0, 400.0, 0, 1),
            contact(500.0, 600.0, 1, 2),
        ))
        world.run(700.0)
        # The destination judged node 1's irrelevant tags harshly.
        assert router.reputation.book(2).score(1) == pytest.approx(0.0)


class TestEscrowExpiryAbortRace:
    """Regression: a hold reclaimed by the escrow timeout
    (``_expire_stale_holds``) must not be refunded *again* when the
    transfer it backed finally aborts — that would mint tokens for the
    payer and break conservation."""

    class _FakeTransfer:
        abort_reason = "contact-ended"

    def _router_with_world(self, escrow_timeout=5.0):
        router = make_protocol(escrow_timeout=escrow_timeout)
        make_world({0: [], 1: []}, router)  # binds world/ledger/metrics
        router.ensure_account(0)
        router.ensure_account(1)
        return router

    def test_abort_after_expiry_does_not_refund_twice(self):
        router = self._router_with_world()
        transfer = self._FakeTransfer()
        hold = router.ledger.escrow(
            1, 10.0, time=0.0, reason="delivery-award", expires_at=5.0,
        )
        router._pending_payments[id(transfer)] = (hold, 0, 10.0, "k")
        assert router.ledger.balance(1) == pytest.approx(90.0)

        # The timeout sweep (run at the next contact) reclaims the hold.
        assert router.ledger.expire_holds(6.0) == pytest.approx(10.0)
        assert router.ledger.balance(1) == pytest.approx(100.0)

        # The late abort must see the hold is gone and do nothing.
        router.on_transfer_aborted(transfer, None)
        assert router.ledger.balance(1) == pytest.approx(100.0)
        assert router.ledger.total_supply() == pytest.approx(200.0)
        assert id(transfer) not in router._pending_payments

    def test_abort_before_expiry_still_refunds_once(self):
        router = self._router_with_world()
        transfer = self._FakeTransfer()
        hold = router.ledger.escrow(
            1, 10.0, time=0.0, reason="delivery-award", expires_at=5.0,
        )
        router._pending_payments[id(transfer)] = (hold, 0, 10.0, "k")
        router.on_transfer_aborted(transfer, None)
        assert router.ledger.balance(1) == pytest.approx(100.0)
        # Nothing left for the (now past-due) sweep to reclaim.
        assert router.ledger.expire_holds(6.0) == 0.0
        assert router.ledger.total_supply() == pytest.approx(200.0)

    def test_landing_after_expiry_pays_nobody(self):
        # The capture side of the same race: the payee of a reclaimed
        # hold goes unpaid for the very late landing, but the message
        # still arrives and conservation still holds.
        router = make_protocol(escrow_timeout=5.0)
        world = make_world({0: [], 1: ["flood"]}, router)
        router.ensure_account(0)
        router.ensure_account(1)
        message = make_message(source=0, size=100, keywords=("flood",),
                               content=("flood",))

        transfer = self._FakeTransfer()
        transfer.receiver = 1
        transfer.message = message
        hold = router.ledger.escrow(
            1, 10.0, time=0.0, reason="delivery-award", expires_at=5.0,
        )
        router._pending_payments[id(transfer)] = (hold, 0, 10.0, "k")
        router.ledger.expire_holds(6.0)
        assert not router.ledger.hold_exists(hold)

        router.on_message_received(transfer, None)
        assert message.uuid in world.node(1).delivered
        assert world.metrics.token_payments == 0
        assert router.ledger.balance(0) == pytest.approx(100.0)
        assert router.ledger.total_supply() == pytest.approx(200.0)


class TestAbortSafety:
    def test_aborted_transfer_releases_escrow(self):
        router = make_protocol()
        # 10 kB at 1 kB/s needs 10 s; the contact lasts 2 s.
        world = make_world({0: [], 1: ["flood"]}, router)
        message = make_message(source=0, size=10_000, keywords=("flood",),
                               content=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 12.0, 0, 1)))
        world.run(100.0)
        assert message.uuid not in world.node(1).delivered
        assert router.ledger.balance(1) == pytest.approx(100.0)
        assert router.ledger.escrowed_total() == 0.0
        assert router.ledger.total_supply() == pytest.approx(200.0)
