"""Unit tests for seeded random streams."""

from repro.sim.rng import RandomStreams


class TestRandomStreams:
    def test_same_seed_same_stream(self):
        a = RandomStreams(7).get("mobility").random(10)
        b = RandomStreams(7).get("mobility").random(10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = RandomStreams(7).get("mobility").random(10)
        b = RandomStreams(8).get("mobility").random(10)
        assert (a != b).any()

    def test_different_names_differ(self):
        streams = RandomStreams(7)
        a = streams.get("mobility").random(10)
        b = streams.get("workload").random(10)
        assert (a != b).any()

    def test_stream_independent_of_request_order(self):
        first = RandomStreams(7)
        first.get("aaa")
        value_late = first.get("zzz").random()

        second = RandomStreams(7)
        value_early = second.get("zzz").random()
        assert value_late == value_early

    def test_get_returns_same_generator_instance(self):
        streams = RandomStreams(7)
        assert streams.get("x") is streams.get("x")

    def test_spawn_shifts_seed(self):
        base = RandomStreams(7)
        spawned = base.spawn(3)
        assert spawned.seed == 10
        assert (
            spawned.get("m").random()
            == RandomStreams(10).get("m").random()
        )

    def test_seed_property(self):
        assert RandomStreams(99).seed == 99
