"""Unit tests for the keyword universe."""

import pytest

from repro.errors import ConfigurationError
from repro.messages.keywords import DEFAULT_THEMES, KeywordUniverse


class TestConstruction:
    def test_size(self):
        assert len(KeywordUniverse(200)) == 200

    def test_small_pool_uses_theme_prefix(self):
        universe = KeywordUniverse(5)
        assert universe.keywords == DEFAULT_THEMES[:5]

    def test_large_pool_pads_with_synthetic_keywords(self):
        universe = KeywordUniverse(50)
        assert "kw049" in universe
        assert len(set(universe.keywords)) == 50

    def test_custom_themes(self):
        universe = KeywordUniverse(3, themes=("a", "b", "c", "d"))
        assert universe.keywords == ("a", "b", "c")

    def test_duplicate_themes_rejected(self):
        with pytest.raises(ConfigurationError):
            KeywordUniverse(3, themes=("a", "a"))

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            KeywordUniverse(0)

    def test_membership_and_index(self):
        universe = KeywordUniverse(10)
        keyword = universe.keywords[3]
        assert keyword in universe
        assert universe.index_of(keyword) == 3
        with pytest.raises(ConfigurationError):
            universe.index_of("not-a-keyword")


class TestSampling:
    def test_sample_distinct(self, rng):
        universe = KeywordUniverse(30)
        picked = universe.sample(rng, 20)
        assert len(picked) == 20
        assert len(set(picked)) == 20
        assert all(k in universe for k in picked)

    def test_sample_respects_exclusions(self, rng):
        universe = KeywordUniverse(10)
        excluded = universe.keywords[:5]
        picked = universe.sample(rng, 5, exclude=excluded)
        assert set(picked) == set(universe.keywords[5:])

    def test_oversample_rejected(self, rng):
        universe = KeywordUniverse(5)
        with pytest.raises(ConfigurationError):
            universe.sample(rng, 6)

    def test_negative_count_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            KeywordUniverse(5).sample(rng, -1)

    def test_sample_interests_returns_frozenset(self, rng):
        interests = KeywordUniverse(30).sample_interests(rng, 7)
        assert isinstance(interests, frozenset)
        assert len(interests) == 7

    def test_irrelevant_for_avoids_content(self, rng):
        universe = KeywordUniverse(20)
        content = list(universe.keywords[:5])
        tags = universe.irrelevant_for(rng, content, 10)
        assert not set(tags) & set(content)

    def test_sampling_is_deterministic(self):
        import numpy as np

        universe = KeywordUniverse(30)
        a = universe.sample(np.random.default_rng(1), 10)
        b = universe.sample(np.random.default_rng(1), 10)
        assert a == b
