"""Tests for the scale benchmark suite (repro-dtn bench scale)."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments.bench_scale import (
    SCALE_TIERS,
    extrapolate,
    fit_power_law,
    scale_config,
    scale_probe,
)


class TestScaleConfig:
    def test_density_matches_paper(self):
        for n in (500, 10_000, 100_000):
            config = scale_config(n, 600.0)
            assert config.n_nodes == n
            assert config.node_density == pytest.approx(100.0)

    def test_500_nodes_is_table_51_area(self):
        config = scale_config(500, 3600.0)
        assert config.area_km2 == pytest.approx(5.0)

    def test_sharding_knobs_pass_through(self):
        config = scale_config(
            1000, 60.0, detect_regions=4, detect_workers=2
        )
        assert config.detect_regions == 4
        assert config.detect_workers == 2


class TestPowerLawFit:
    def test_exact_power_law_recovered(self):
        # wall = 2e-3 * n**1.2
        points = [(n, 2e-3 * n ** 1.2) for n in (500, 1000, 2000)]
        c, k = fit_power_law(points)
        assert c == pytest.approx(2e-3, rel=1e-9)
        assert k == pytest.approx(1.2, rel=1e-9)

    def test_extrapolate(self):
        points = [(500, 10.0), (1000, 20.0)]  # linear: k = 1
        assert extrapolate(points, 10_000) == pytest.approx(200.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([(500, 10.0)])

    def test_nonpositive_points_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([(500, 10.0), (1000, 0.0)])


class TestScaleProbe:
    def test_probe_reports_throughput(self):
        probe = scale_probe(50, 60.0, seed=1)
        assert probe["wall_seconds"] > 0.0
        assert probe["n_nodes"] == 50.0
        assert probe["sim_seconds"] == 60.0
        assert probe["node_sim_seconds_per_wall_second"] == (
            pytest.approx(50 * 60.0 / probe["wall_seconds"])
        )
        assert 0.0 <= probe["mdr"] <= 1.0

    def test_tier_table_shape(self):
        for tier, (n, duration, name) in SCALE_TIERS.items():
            # 1k is the CI audit-smoke tier; everything else is 10k+.
            assert n >= 1_000
            assert duration > 0
            assert name.startswith("scale_")
        assert "1k" in SCALE_TIERS  # the CI conservation-audit smoke


class TestSuiteValidation:
    def test_unknown_tier_rejected(self):
        from repro.experiments.bench_scale import run_scale_suite

        with pytest.raises(ConfigurationError):
            run_scale_suite(tiers=["10k", "galactic"])

    def test_empty_tiers_rejected(self):
        from repro.experiments.bench_scale import run_scale_suite

        with pytest.raises(ConfigurationError):
            run_scale_suite(tiers=[])
