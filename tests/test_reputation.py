"""Unit tests for the Distributed Reputation Model."""

import numpy as np
import pytest

from tests.helpers import make_message
from repro.core.incentive import IncentiveParams
from repro.core.reputation import (
    RatingModel,
    ReputationBook,
    ReputationSystem,
    intermediate_message_rating,
    source_message_rating,
)
from repro.errors import ConfigurationError


@pytest.fixture
def params():
    return IncentiveParams(alpha=0.7, max_rating=5.0, default_rating=3.0)


class TestMessageRatingFormulas:
    def test_source_rating_halves_tags_and_quality(self):
        # R_i = 1/2 * (R_t * C/C_m) + 1/2 * R_q
        value = source_message_rating(4.0, 2.5, 5.0, 3.0)
        assert value == pytest.approx(0.5 * (4.0 * 0.5) + 0.5 * 3.0)

    def test_intermediate_rating_uses_tags_only(self):
        value = intermediate_message_rating(4.0, 2.5, 5.0)
        assert value == pytest.approx(4.0 * 0.5)

    def test_full_confidence_passes_tag_rating_through(self):
        assert intermediate_message_rating(4.0, 5.0, 5.0) == pytest.approx(4.0)

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ConfigurationError):
            source_message_rating(4.0, 6.0, 5.0, 3.0)
        with pytest.raises(ConfigurationError):
            intermediate_message_rating(4.0, -1.0, 5.0)


class TestReputationBook:
    def test_unknown_subject_gets_default(self, params):
        book = ReputationBook(0, params)
        assert book.score(42) == params.default_rating
        assert not book.has_opinion(42)

    def test_rate_message_builds_running_average(self, params):
        book = ReputationBook(0, params)
        book.rate_message(5, 4.0)
        book.rate_message(5, 2.0)
        assert book.score(5) == pytest.approx(3.0)
        assert book.own_average(5) == pytest.approx(3.0)
        assert book.has_opinion(5)

    def test_merge_opinion_alpha_weighting(self, params):
        # r = (1 - alpha) * heard + alpha * own, alpha = 0.7
        book = ReputationBook(0, params)
        book.rate_message(5, 4.0)
        book.merge_opinion(5, 1.0)
        assert book.score(5) == pytest.approx(0.3 * 1.0 + 0.7 * 4.0)

    def test_merge_without_prior_adopts_heard_score(self, params):
        book = ReputationBook(0, params)
        book.merge_opinion(5, 1.5)
        assert book.score(5) == 1.5

    def test_merge_about_self_ignored(self, params):
        book = ReputationBook(0, params)
        book.merge_opinion(0, 0.1)
        assert book.score(0) == params.default_rating

    def test_out_of_range_ratings_rejected(self, params):
        book = ReputationBook(0, params)
        with pytest.raises(ConfigurationError):
            book.rate_message(5, 5.5)
        with pytest.raises(ConfigurationError):
            book.merge_opinion(5, -0.1)

    def test_award_multiplier_blends_path_and_own(self, params):
        book = ReputationBook(0, params)
        book.rate_message(5, 5.0)  # own opinion: perfect
        multiplier = book.award_multiplier(5, [2.5])  # path avg: half
        assert multiplier == pytest.approx(0.3 * 0.5 + 0.7 * 1.0)

    def test_award_multiplier_without_path_ratings(self, params):
        book = ReputationBook(0, params)
        book.rate_message(5, 4.0)
        assert book.award_multiplier(5, []) == pytest.approx(4.0 / 5.0)

    def test_award_multiplier_clamped_to_unit_interval(self, params):
        book = ReputationBook(0, params)
        assert 0.0 <= book.award_multiplier(9, [0.0]) <= 1.0
        book.rate_message(9, 5.0)
        assert book.award_multiplier(9, [5.0]) <= 1.0

    def test_low_reputation_reduces_award(self, params):
        book = ReputationBook(0, params)
        book.rate_message(5, 0.5)
        assert book.award_multiplier(5, []) < 0.5


class TestReputationSystem:
    def test_books_are_lazy_and_cached(self, params):
        system = ReputationSystem(params)
        assert system.book(1) is system.book(1)

    def test_exchange_merges_both_ways(self, params):
        system = ReputationSystem(params)
        system.book(1).rate_message(9, 1.0)
        system.book(2).rate_message(9, 5.0)
        system.exchange(1, 2)
        # Node 1: 0.3 * 5 + 0.7 * 1 = 2.2; node 2: 0.3 * 1 + 0.7 * 5 = 3.8
        assert system.book(1).score(9) == pytest.approx(2.2)
        assert system.book(2).score(9) == pytest.approx(3.8)

    def test_exchange_skips_opinions_about_interlocutors(self, params):
        system = ReputationSystem(params)
        system.book(1).rate_message(2, 0.0)  # 1 thinks badly of 2
        system.exchange(1, 2)
        # 2 must not adopt 1's opinion about 2 itself.
        assert not system.book(2).has_opinion(2)

    def test_exchange_spreads_to_third_parties(self, params):
        system = ReputationSystem(params)
        system.book(1).rate_message(9, 1.0)
        system.exchange(1, 2)
        assert system.book(2).score(9) == pytest.approx(1.0)

    def test_average_score_of(self, params):
        system = ReputationSystem(params)
        system.book(1).rate_message(9, 1.0)
        system.book(2).rate_message(9, 3.0)
        system.book(3)  # no opinion
        assert system.average_score_of(9, [1, 2, 3]) == pytest.approx(2.0)

    def test_average_score_defaults_when_nobody_knows(self, params):
        system = ReputationSystem(params)
        assert system.average_score_of(9, [1, 2]) == params.default_rating


class TestWhitewashing:
    """Regression: forget_subject must erase *all* state about the
    subject, including the own-rating running average.  Before the fix,
    forget_subject poked only the combined-score dict from outside the
    book, so the next rate_message resurrected the pre-wash average —
    the whitewashed identity was not actually fresh."""

    def test_book_forget_drops_score_and_own_average(self, params):
        book = ReputationBook(0, params)
        book.rate_message(9, 1.0)
        book.merge_opinion(9, 2.0)
        assert book.forget(9) is True
        assert book.score(9) == params.default_rating
        assert book.own_average(9) is None
        assert not book.has_opinion(9)

    def test_book_forget_reports_whether_opinion_existed(self, params):
        book = ReputationBook(0, params)
        assert book.forget(42) is False

    def test_forgotten_subject_rates_like_a_stranger(self, params):
        # The heart of the regression: after a wash, the first new
        # rating must stand alone, not be averaged into old history.
        book = ReputationBook(0, params)
        for _ in range(10):
            book.rate_message(9, 0.0)  # ruined reputation
        book.forget(9)
        book.rate_message(9, 5.0)
        assert book.score(9) == pytest.approx(5.0)
        assert book.own_average(9) == pytest.approx(5.0)

    def test_system_forget_subject_clears_every_book(self, params):
        system = ReputationSystem(params)
        system.book(1).rate_message(9, 1.0)
        system.book(2).rate_message(9, 2.0)
        system.book(3)  # knows nothing about 9
        assert system.forget_subject(9) == 2
        for observer in (1, 2, 3):
            assert system.book(observer).score(9) == params.default_rating
            assert system.book(observer).own_average(9) is None
        assert system.average_score_of(9, [1, 2, 3]) == params.default_rating

    def test_bayesian_forget_is_equivalent(self, params):
        from repro.core.bayesian_reputation import BayesianReputationSystem

        system = BayesianReputationSystem(params)
        system.book(1).rate_message(9, 0.0)
        system.book(2).rate_message(9, 0.0)
        assert system.forget_subject(9) == 2
        assert not system.book(1).has_opinion(9)
        # Scores return to the Beta prior mean on the rating scale.
        assert system.book(1).score(9) == pytest.approx(
            0.5 * params.max_rating
        )


class TestRatingModel:
    @pytest.fixture
    def model(self, params):
        return RatingModel(params, noise=0.0, confidence_low=1.0)

    def test_truthful_source_gets_high_tag_rating(self, model, rng):
        message = make_message(content=("flood", "fire"),
                               keywords=("flood", "fire"))
        rating = model.tag_rating(message, message.annotations, rng)
        assert rating == pytest.approx(5.0)

    def test_lying_annotator_gets_low_tag_rating(self, model, rng):
        message = make_message(content=("flood",), keywords=("flood",))
        message.annotate("car", added_by=7, added_at=1.0)
        rating = model.tag_rating(message, message.annotations_by(7), rng)
        assert rating == pytest.approx(0.0)

    def test_quality_rating_tracks_quality(self, model, rng):
        good = make_message(quality=1.0)
        bad = make_message(quality=0.1)
        assert model.quality_rating(good, rng) == pytest.approx(5.0)
        assert model.quality_rating(bad, rng) == pytest.approx(0.5)

    def test_rate_source_combines_quality_and_tags(self, model, rng):
        message = make_message(quality=1.0, content=("flood",),
                               keywords=("flood",))
        assert model.rate_source(message, rng) == pytest.approx(5.0)

    def test_rate_intermediate_judges_added_tags(self, model, rng):
        message = make_message(content=("flood", "fire"),
                               keywords=("flood",))
        message.annotate("fire", added_by=3, added_at=1.0)   # truthful
        message.annotate("car", added_by=4, added_at=2.0)    # lie
        assert model.rate_intermediate(message, 3, rng) == pytest.approx(5.0)
        assert model.rate_intermediate(message, 4, rng) == pytest.approx(0.0)

    def test_noise_stays_within_scale(self, params, rng):
        model = RatingModel(params, noise=2.0)
        message = make_message(quality=0.9)
        for _ in range(50):
            assert 0.0 <= model.quality_rating(message, rng) <= 5.0

    def test_invalid_model_params_rejected(self, params):
        with pytest.raises(ConfigurationError):
            RatingModel(params, noise=-1.0)
        with pytest.raises(ConfigurationError):
            RatingModel(params, confidence_low=1.5)
