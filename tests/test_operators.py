"""Unit tests for the Paper I Section 4 operator functions."""

import pytest

from tests.helpers import contact, make_message, make_world, trace_of
from repro.core.incentive import IncentiveParams
from repro.core.operators import Operators
from repro.core.protocol import IncentiveChitChatRouter
from repro.core.reputation import RatingModel
from repro.errors import ConfigurationError
from repro.messages.message import Priority


@pytest.fixture
def bound():
    params = IncentiveParams(initial_tokens=100.0)
    router = IncentiveChitChatRouter(
        params=params,
        rating_model=RatingModel(params, noise=0.0, confidence_low=1.0),
    )
    world = make_world(
        {0: ["flood"], 1: ["fire"], 2: []}, router,
    )
    return world, router, Operators(router)


class TestAnnotateAndSubscribe:
    def test_annotate_creates_and_injects(self, bound):
        world, router, ops = bound
        message = ops.annotate(
            0, content=("flood", "fire"), labels=("flood",),
            size=500, quality=0.9, priority=Priority.HIGH,
        )
        assert message.uuid in world.node(0).buffer
        assert message.keywords == {"flood"}
        assert message.priority is Priority.HIGH
        assert world.metrics.record_for(message.uuid) is not None

    def test_subscribe_adds_direct_interest(self, bound):
        world, router, ops = bound
        ops.subscribe(2, ["shelter"])
        assert "shelter" in world.node(2).interests
        assert router.table(2).is_direct("shelter")
        assert router.table(2).weight("shelter") == 0.5


class TestWeightOperators:
    def test_decay_weights_returns_mapping(self, bound):
        world, router, ops = bound
        weights = ops.decay_weights(0)
        assert weights == {"flood": 0.5}

    def test_increment_weights_grows_from_peer(self, bound):
        world, router, ops = bound
        weights = ops.increment_weights(2, 0, elapsed=100.0)
        assert weights.get("flood", 0.0) > 0.0


class TestForwardingOperators:
    def test_get_messages_to_forward(self, bound):
        world, router, ops = bound
        message = ops.annotate(2, content=("flood",), labels=("flood",),
                               size=100)
        assert [m.uuid for m in ops.get_messages_to_forward(2, 0)] == [
            message.uuid
        ]
        assert ops.get_messages_to_forward(2, 1) == []

    def test_decide_dest_or_relay(self, bound):
        world, router, ops = bound
        message = make_message(keywords=("flood",))
        assert ops.decide_dest_or_relay(message, 0) == "destination"
        assert ops.decide_dest_or_relay(message, 1) == "relay"

    def test_decide_best_relay_prefers_strongest(self, bound):
        world, router, ops = bound
        message = make_message(keywords=("fire",))
        assert ops.decide_best_relay([0, 1, 2], message) == 1
        with pytest.raises(ConfigurationError):
            ops.decide_best_relay([], message)

    def test_compute_incentive_requires_connection(self, bound):
        world, router, ops = bound
        message = make_message(source=2, keywords=("flood",))
        with pytest.raises(ConfigurationError):
            ops.compute_incentive(message, 2, 0)

    def test_compute_incentive_over_open_link(self, bound):
        world, router, ops = bound
        message = ops.annotate(2, content=("flood",), labels=("flood",),
                               size=100)
        values = []

        def probe():
            values.append(ops.compute_incentive(message, 2, 0))

        world.engine.schedule_at(15.0, probe)
        world.load_contact_trace(trace_of(contact(10.0, 20.0, 0, 2)))
        world.run(30.0)
        assert len(values) == 1
        assert 0.0 < values[0] <= router.params.max_incentive


class TestRatingOperators:
    def test_rate_message_updates_book(self, bound):
        world, router, ops = bound
        message = make_message(source=2, quality=1.0,
                               content=("flood",), keywords=("flood",))
        rating = ops.rate_message(0, message)
        assert rating == pytest.approx(5.0)
        assert router.reputation.book(0).score(2) == pytest.approx(5.0)

    def test_rate_node_returns_current_score(self, bound):
        world, router, ops = bound
        assert ops.rate_node(0, 2) == router.params.default_rating
        router.reputation.book(0).rate_message(2, 1.0)
        assert ops.rate_node(0, 2) == 1.0


class TestInterestMatrix:
    def test_interest_matrix_snapshot(self, bound):
        world, router, ops = bound
        ops.increment_weights(2, 0, elapsed=100.0)
        node_ids, keywords, weights = ops.interest_matrix()
        assert node_ids == [0, 1, 2]
        col = {kw: j for j, kw in enumerate(keywords)}
        assert weights[0, col["flood"]] == 0.5
        assert weights[1, col["fire"]] == 0.5
        assert weights[2, col["flood"]] > 0.0
        assert weights.shape == (3, len(keywords))


class TestEnrichOperator:
    def test_enrich_adds_and_meters(self, bound):
        world, router, ops = bound
        message = make_message(content=("flood", "fire"), keywords=("flood",))
        added = ops.enrich(2, message, ["fire", "flood", "car"])
        assert added == ["fire", "car"]  # "flood" was a duplicate
        assert world.metrics.enrichment_tags == 2
        assert world.metrics.enrichment_relevant == 1
