"""Property tests (hypothesis) for the struct-of-arrays world state.

Three families of invariant back the SoA migration:

* **Degenerate populations** — 0 nodes in a region, 1 node total, all
  nodes in one region: slot bookkeeping and region queries must stay
  total (no index errors, no phantom members).
* **Region conservation** — after any sequence of moves and
  :meth:`WorldState.assign_regions` calls, every slot has exactly one
  region and the per-region populations partition the population:
  boundary crossings never lose or duplicate a node.
* **Accumulation order** — the batched energy/battery updates must
  produce exactly the floats a scalar loop produces, for any batch
  including repeated slots (float addition is not associative, so this
  is a real constraint, not a tautology).

Plus the settlement-conservation property: a traced run's batched
token settlements must replay cleanly through the conservation
auditor.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mobility.regions import RegionGrid
from repro.network.world_state import NodeStateView, WorldState

finite_floats = st.floats(
    min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# Construction & degenerate populations
# ----------------------------------------------------------------------
class TestConstruction:
    def test_zero_nodes(self):
        state = WorldState([])
        assert state.n == 0
        assert len(state) == 0
        assert state.positions.shape == (0, 2)
        assert state.region_counts(4).tolist() == [0, 0, 0, 0]
        assert state.assign_regions(
            RegionGrid((100.0, 100.0), 4)
        ).size == 0

    def test_one_node(self):
        state = WorldState([7])
        assert state.n == 1
        view = state.view(7)
        assert view.node_id == 7
        assert view.slot == 0
        assert view.region == 0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            WorldState([1, 2, 1])

    def test_negative_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            WorldState([0, -1])

    def test_unknown_id_rejected(self):
        state = WorldState([0, 1, 2])
        with pytest.raises(ConfigurationError):
            state.slot_of(3)

    def test_zero_battery_rejected(self):
        with pytest.raises(ConfigurationError):
            WorldState([0, 1], battery_capacity=0.0)

    @given(ids=st.lists(
        st.integers(min_value=0, max_value=10_000),
        min_size=1, max_size=50, unique=True,
    ))
    @settings(max_examples=100, deadline=None)
    def test_slot_round_trip(self, ids):
        state = WorldState(ids)
        for k, node_id in enumerate(ids):
            assert state.slot_of(node_id) == k
            assert state.view(node_id).node_id == node_id
        assert state.node_ids.tolist() == ids

    def test_node_ids_view_read_only(self):
        state = WorldState([0, 1, 2])
        with pytest.raises(ValueError):
            state.node_ids[0] = 9


# ----------------------------------------------------------------------
# Region conservation under arbitrary motion
# ----------------------------------------------------------------------
@st.composite
def region_scenarios(draw):
    n_nodes = draw(st.integers(min_value=0, max_value=40))
    n_regions = draw(st.integers(min_value=1, max_value=6))
    width = draw(st.floats(min_value=10.0, max_value=1000.0))
    height = draw(st.floats(min_value=10.0, max_value=1000.0))
    n_steps = draw(st.integers(min_value=1, max_value=5))
    coords = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0),
                st.floats(min_value=0.0, max_value=1.0),
            ),
            min_size=n_nodes * (n_steps + 1),
            max_size=n_nodes * (n_steps + 1),
        )
    )
    return n_nodes, n_regions, (width, height), n_steps, coords


class TestRegionConservation:
    @given(scenario=region_scenarios())
    @settings(max_examples=100, deadline=None)
    def test_crossings_never_lose_or_duplicate_nodes(self, scenario):
        n_nodes, n_regions, area, n_steps, coords = scenario
        grid = RegionGrid(area, n_regions)
        state = WorldState(range(n_nodes))
        frames = np.asarray(coords, dtype=np.float64).reshape(
            n_steps + 1, n_nodes, 2
        ) * np.asarray(area)
        for step, frame in enumerate(frames):
            state.positions[:] = frame
            before = state.region.copy()
            moved = state.assign_regions(grid)
            # Partition: every slot in exactly one region.
            counts = state.region_counts(grid.n_regions)
            assert int(counts.sum()) == n_nodes
            members = [
                state.region_members(r) for r in range(grid.n_regions)
            ]
            union = np.concatenate(members) if members else np.empty(0)
            assert sorted(union.tolist()) == list(range(n_nodes))
            # The handoff set is exactly the region delta.
            assert moved.tolist() == np.flatnonzero(
                before != state.region
            ).tolist() if step else True
            # Assignment agrees with the grid's own mapping.
            assert np.array_equal(
                state.region, grid.region_of(state.positions)
            )

    @given(
        n_nodes=st.integers(min_value=1, max_value=30),
        n_regions=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=50, deadline=None)
    def test_all_nodes_in_one_region(self, n_nodes, n_regions):
        """Degenerate occupancy: the full population in one strip."""
        grid = RegionGrid((500.0, 500.0), n_regions)
        state = WorldState(range(n_nodes))
        lo, hi = grid.bounds(grid.n_regions - 1)
        state.positions[:, 0] = (lo + hi) / 2.0
        state.assign_regions(grid)
        counts = state.region_counts(grid.n_regions)
        assert counts[grid.n_regions - 1] == n_nodes
        assert int(counts.sum()) == n_nodes
        for region in range(grid.n_regions - 1):
            assert state.region_members(region).size == 0


# ----------------------------------------------------------------------
# Accumulation order: batched == scalar, bit for bit
# ----------------------------------------------------------------------
@st.composite
def charge_batches(draw):
    n_nodes = draw(st.integers(min_value=1, max_value=8))
    length = draw(st.integers(min_value=0, max_value=60))
    slots = draw(st.lists(
        st.integers(min_value=0, max_value=n_nodes - 1),
        min_size=length, max_size=length,
    ))
    joules = draw(st.lists(
        st.floats(min_value=0.0, max_value=100.0,
                  allow_nan=False, allow_infinity=False),
        min_size=length, max_size=length,
    ))
    return n_nodes, slots, joules


class TestAccumulationOrder:
    @given(batch=charge_batches())
    @settings(max_examples=200, deadline=None)
    def test_charge_energy_matches_scalar_loop(self, batch):
        n_nodes, slots, joules = batch
        state = WorldState(range(n_nodes))
        state.charge_energy(
            np.asarray(slots, dtype=np.int64),
            np.asarray(joules, dtype=np.float64),
        )
        expected = np.zeros(n_nodes)
        for slot, j in zip(slots, joules):
            expected[slot] += j  # the scalar reference order
        assert state.energy.tolist() == expected.tolist()

    @given(batch=charge_batches())
    @settings(max_examples=200, deadline=None)
    def test_drain_battery_matches_scalar_loop(self, batch):
        n_nodes, slots, joules = batch
        capacity = 150.0
        state = WorldState(range(n_nodes), battery_capacity=capacity)
        crossed = state.drain_battery(
            np.asarray(slots, dtype=np.int64),
            np.asarray(joules, dtype=np.float64),
        )
        expected = np.full(n_nodes, capacity)
        expected_crossed = []
        for slot, j in zip(slots, joules):
            was_positive = expected[slot] > 0.0
            expected[slot] -= j
            if expected[slot] < 0.0:
                expected[slot] = 0.0
            if was_positive and expected[slot] <= 0.0:
                expected_crossed.append(slot)
        # Batched drain clamps once at the end; intermediate negatives
        # within one batch collapse to the same zero, and the crossing
        # set must agree with the scalar reference.
        assert np.all(state.battery >= 0.0)
        positive = expected > 0.0
        assert np.array_equal(state.battery > 0.0, positive)
        assert state.battery[positive].tolist() == (
            expected[positive].tolist()
        )
        assert crossed.tolist() == expected_crossed

    def test_drain_without_battery_is_noop(self):
        state = WorldState(range(3))
        crossed = state.drain_battery(
            np.asarray([0, 1], dtype=np.int64),
            np.asarray([5.0, 5.0], dtype=np.float64),
        )
        assert crossed.size == 0

    @given(amount=finite_floats)
    @settings(max_examples=50, deadline=None)
    def test_recharge_caps_at_capacity(self, amount):
        state = WorldState(range(4), battery_capacity=100.0)
        state.battery[:] = [0.0, 25.0, 99.0, 100.0]
        state.recharge(amount)
        assert np.all(state.battery <= 100.0)
        assert np.all(
            state.battery >= np.minimum([0.0, 25.0, 99.0, 100.0], 100.0)
        )


# ----------------------------------------------------------------------
# Views write through to the arrays
# ----------------------------------------------------------------------
class TestNodeStateView:
    def test_position_and_velocity_write_through(self):
        state = WorldState([0, 1])
        view = state.view(1)
        view.position = (3.0, 4.0)
        view.velocity = (0.5, -0.5)
        assert state.positions[1].tolist() == [3.0, 4.0]
        assert state.velocities[1].tolist() == [0.5, -0.5]
        # And the view reads the live arrays, not a copy.
        state.positions[1, 0] = 9.0
        assert view.position[0] == 9.0

    def test_scalar_mirrors(self):
        state = WorldState([0, 1], battery_capacity=50.0)
        state.energy[0] = 12.5
        state.balance[0] = 42.0
        state.reputation[0] = 3.5
        view = state.view(0)
        assert view.energy_consumed == 12.5
        assert view.battery == 50.0
        assert view.token_balance == 42.0
        assert view.reputation_score == 3.5
        assert view.alive is True


# ----------------------------------------------------------------------
# Batched settlement conserves token supply (trace auditor)
# ----------------------------------------------------------------------
class TestSettlementConservation:
    def test_soa_run_settlements_replay_clean(self, tmp_path):
        """End-to-end: a traced SoA run passes the conservation audit.

        The auditor replays every settlement record against the ledger
        invariants (supply constant modulo mint/burn, escrow balanced),
        so a clean replay proves the batched world core never created
        or destroyed tokens.
        """
        from repro.experiments import ScenarioConfig, run_scenario
        from repro.trace.audit import replay_trace

        path = tmp_path / "soa_settlement.jsonl"
        config = ScenarioConfig.tiny(world_core="soa")
        run_scenario(config, "incentive", seed=3, trace_path=str(path))
        report = replay_trace(str(path))
        assert report.ok, report
