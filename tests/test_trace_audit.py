"""Tests for the trace auditor: unit replays over hand-built records,
plus the property tests that tie the audit back to live simulations."""

import pytest

from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.faults import FaultConfig
from repro.trace.audit import replay_trace
from repro.trace.schema import SCHEMA_VERSION, iter_trace


def _header(**meta):
    record = {"type": "trace-header", "t": 0.0, "schema": SCHEMA_VERSION}
    record.update(meta)
    return record


def _open(node, amount, t=0.0):
    return {"type": "account-open", "t": t, "node": node, "amount": amount}


class TestReplayUnit:
    def test_clean_escrow_lifecycle(self):
        audit = replay_trace([
            _header(),
            _open(1, 100.0), _open(2, 100.0),
            {"type": "escrow-hold", "t": 1.0, "hold": 7, "payer": 1,
             "amount": 10.0},
            {"type": "escrow-capture", "t": 2.0, "hold": 7, "payer": 1,
             "payee": 2, "amount": 10.0},
            {"type": "run-end", "t": 3.0, "supply": 200.0,
             "endowment": 200.0, "escrow": 0.0, "token_payments": 1,
             "tokens_moved": 10.0,
             "balances": {"1": 90.0, "2": 110.0}},
        ])
        assert audit.ok, audit.violations
        assert audit.token_payments == 1
        assert audit.tokens_moved == 10.0
        assert audit.flows[1].spent == 10.0
        assert audit.flows[2].earned == 10.0
        assert audit.flows[1].net == -10.0
        assert audit.conservation_checks == 5  # 2 opens, hold, capture, end

    def test_release_refunds_the_payer(self):
        audit = replay_trace([
            _header(),
            _open(1, 50.0),
            {"type": "escrow-hold", "t": 1.0, "hold": 1, "payer": 1,
             "amount": 5.0},
            {"type": "escrow-release", "t": 2.0, "hold": 1, "payer": 1,
             "amount": 5.0, "cause": "expiry"},
            {"type": "run-end", "t": 3.0, "supply": 50.0,
             "token_payments": 0, "tokens_moved": 0.0,
             "balances": {"1": 50.0}},
        ])
        assert audit.ok, audit.violations
        assert audit.token_payments == 0
        assert audit.flows[1].balance == 50.0

    def test_double_settle_is_a_violation(self):
        audit = replay_trace([
            _header(),
            _open(1, 50.0), _open(2, 0.0),
            {"type": "escrow-hold", "t": 1.0, "hold": 1, "payer": 1,
             "amount": 5.0},
            {"type": "escrow-capture", "t": 2.0, "hold": 1, "payer": 1,
             "payee": 2, "amount": 5.0},
            {"type": "escrow-release", "t": 3.0, "hold": 1, "payer": 1,
             "amount": 5.0, "cause": "abort"},
        ])
        assert not audit.ok
        assert any("double-settled" in str(v) for v in audit.violations)

    def test_overdraw_is_a_violation(self):
        audit = replay_trace([
            _header(),
            _open(1, 3.0),
            {"type": "escrow-hold", "t": 1.0, "hold": 1, "payer": 1,
             "amount": 10.0},
        ])
        assert any("overdraws" in str(v) for v in audit.violations)

    def test_conservation_break_is_detected(self):
        # A transfer credits the payee without any matching debit? The
        # auditor cannot see one directly, so fake it with a run-end
        # supply claim that disagrees with the replay.
        audit = replay_trace([
            _header(),
            _open(1, 10.0),
            {"type": "run-end", "t": 1.0, "supply": 12.0,
             "balances": {"1": 10.0}},
        ])
        assert any("replayed supply" in str(v) for v in audit.violations)

    def test_open_hold_at_run_end_is_a_violation(self):
        audit = replay_trace([
            _header(),
            _open(1, 10.0),
            {"type": "escrow-hold", "t": 1.0, "hold": 1, "payer": 1,
             "amount": 2.0},
            {"type": "run-end", "t": 2.0},
        ])
        assert any("still open" in str(v) for v in audit.violations)

    def test_payment_count_mismatch_is_a_violation(self):
        audit = replay_trace([
            _header(),
            _open(1, 10.0), _open(2, 0.0),
            {"type": "transfer-payment", "t": 1.0, "payer": 1, "payee": 2,
             "amount": 1.0},
            {"type": "run-end", "t": 2.0, "token_payments": 2,
             "tokens_moved": 1.0},
        ])
        assert any("payments" in str(v) for v in audit.violations)

    def test_balance_snapshot_mismatch_is_a_violation(self):
        audit = replay_trace([
            _header(),
            _open(1, 10.0),
            {"type": "run-end", "t": 1.0, "balances": {"1": 9.0}},
        ])
        assert any("replayed balance" in str(v) for v in audit.violations)

    def test_double_open_is_a_violation(self):
        audit = replay_trace([_header(), _open(1, 5.0), _open(1, 5.0)])
        assert any("opened twice" in str(v) for v in audit.violations)

    def test_missing_run_end_flags_truncated_trace(self):
        audit = replay_trace([_header(), _open(1, 5.0)])
        assert any("no run-end" in str(v) for v in audit.violations)

    def test_tokenless_trace_needs_no_run_end(self):
        audit = replay_trace([
            _header(),
            {"type": "contact-up", "t": 1.0, "a": 1, "b": 2},
            {"type": "contact-down", "t": 5.0, "a": 1, "b": 2},
        ])
        assert audit.ok, audit.violations
        assert audit.counts["contact-up"] == 1

    def test_rating_series_accumulates(self):
        audit = replay_trace([
            _header(),
            {"type": "rating", "t": 1.0, "rater": 1, "subject": 2,
             "rating": 4.0, "score": 4.0},
            {"type": "rating", "t": 2.0, "rater": 3, "subject": 2,
             "rating": 2.0, "score": 3.0},
        ])
        assert audit.reputation[2] == [(1.0, 1, 4.0), (2.0, 3, 3.0)]

    def test_to_json_shape(self):
        payload = replay_trace([_header(), _open(1, 5.0),
                                {"type": "run-end", "t": 1.0}]).to_json()
        assert payload["ok"] is True
        assert payload["endowment"] == 5.0
        assert payload["accounts"]["1"]["balance"] == 5.0


def _traced_run(tmp_path, scheme, seed, *, faults=None, name="run"):
    config = ScenarioConfig.tiny(
        faults=faults,
        max_retransmissions=1 if faults is not None else 0,
    )
    path = tmp_path / f"{name}.jsonl"
    result = run_scenario(config, scheme, seed=seed, trace_path=str(path))
    return result, path


class TestAuditReproducesMetrics:
    """The property the whole subsystem exists for: replaying a run's
    trace must reproduce the MetricsCollector token totals *exactly*."""

    @pytest.mark.parametrize("scheme,seed", [
        ("incentive", 1),
        ("incentive", 2),
        ("incentive-bayesian", 3),
        ("incentive-no-reputation", 4),
    ])
    def test_token_totals_reproduced_exactly(self, tmp_path, scheme, seed):
        result, path = _traced_run(tmp_path, scheme, seed)
        audit = replay_trace(path)
        assert audit.ok, audit.violations[:5]
        summary = result.summary()
        assert audit.token_payments == int(summary["token_payments"])
        assert audit.tokens_moved == summary["tokens_moved"]  # exact

    @pytest.mark.parametrize("faults", [
        FaultConfig(loss_probability=0.2),
        FaultConfig(loss_probability=0.1, corruption_probability=0.1),
        FaultConfig(mean_uptime=600.0, mean_downtime=200.0,
                    churn_policy="wipe"),
    ])
    def test_conservation_holds_under_faults(self, tmp_path, faults):
        result, path = _traced_run(
            tmp_path, "incentive", 5, faults=faults
        )
        audit = replay_trace(path)
        assert audit.ok, audit.violations[:5]
        summary = result.summary()
        assert audit.token_payments == int(summary["token_payments"])
        assert audit.tokens_moved == summary["tokens_moved"]
        assert audit.conservation_checks > 0

    def test_chitchat_trace_has_no_token_records(self, tmp_path):
        _result, path = _traced_run(tmp_path, "chitchat", 1)
        audit = replay_trace(path)
        assert audit.ok, audit.violations[:5]
        assert audit.token_payments == 0
        assert "escrow-hold" not in audit.counts

    def test_every_record_is_schema_valid(self, tmp_path):
        _result, path = _traced_run(tmp_path, "incentive", 1)
        count = sum(1 for _ in iter_trace(path))  # validates each line
        assert count > 100


class TestTracingChangesNothing:
    """Golden determinism: tracing is pure observation."""

    @pytest.mark.parametrize("scheme", ["incentive", "chitchat"])
    def test_traced_and_untraced_summaries_identical(self, tmp_path, scheme):
        config = ScenarioConfig.tiny()
        untraced = run_scenario(config, scheme, seed=7)
        traced, _ = _traced_run(tmp_path, scheme, 7)
        assert traced.summary() == untraced.summary()
        assert traced.metrics.mdr_by_priority() == \
            untraced.metrics.mdr_by_priority()

    def test_traced_run_under_faults_identical(self, tmp_path):
        faults = FaultConfig(loss_probability=0.15, mean_uptime=600.0,
                             mean_downtime=200.0)
        config = ScenarioConfig.tiny(faults=faults, max_retransmissions=1)
        untraced = run_scenario(config, "incentive", seed=9)
        path = tmp_path / "faulted.jsonl"
        traced = run_scenario(config, "incentive", seed=9,
                              trace_path=str(path))
        assert traced.summary() == untraced.summary()
