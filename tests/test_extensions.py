"""Tests for substrate extensions: mobility dispatch, batteries,
promise cleanup, and ASCII charts."""

import pytest

from tests.helpers import contact, make_message, make_world, trace_of
from repro.core.incentive import IncentiveParams
from repro.core.protocol import IncentiveChitChatRouter
from repro.core.reputation import RatingModel
from repro.errors import ConfigurationError
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import build_contact_trace, run_scenario
from repro.metrics.reports import ascii_chart
from repro.network.node import Node
from repro.network.world import World
from repro.routing.epidemic import EpidemicRouter
from repro.sim.engine import Engine


class TestMobilityDispatch:
    @pytest.mark.parametrize(
        "mobility", ["random-waypoint", "random-walk", "manhattan"],
    )
    def test_all_models_build_traces(self, mobility):
        config = ScenarioConfig.tiny(mobility=mobility)
        trace = build_contact_trace(config, seed=1)
        assert len(trace) > 0
        assert trace.duration() <= config.duration

    def test_unknown_mobility_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig.tiny(mobility="teleport")

    def test_scenarios_run_under_alternate_mobility(self):
        config = ScenarioConfig.tiny(mobility="manhattan")
        result = run_scenario(config, "incentive", seed=1)
        assert 0.0 <= result.mdr <= 1.0


class TestBattery:
    def _world(self, capacity):
        return make_world_with_battery(capacity)

    def test_batteries_drain_with_transfers(self):
        world = make_world_with_battery(capacity=1.0)
        message = make_message(source=0, size=10_000, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 100.0, 0, 1)))
        world.run(200.0)
        assert world.battery_level(0) < 1.0

    def test_dead_battery_stops_contacts(self):
        # A tiny battery dies after the first transfer; the second
        # contact then never forms, so the second message stays put.
        world = make_world_with_battery(capacity=0.5)
        first = make_message(source=0, size=10_000, keywords=("flood",))
        second = make_message(source=0, size=10_000, keywords=("flood",))
        world.inject_message(first)
        world.load_contact_trace(trace_of(
            contact(10.0, 100.0, 0, 1),
            contact(200.0, 300.0, 0, 1),
        ))
        world.engine.schedule_at(150.0, lambda: world.inject_message(second))
        world.run(400.0)
        assert first.uuid in world.node(1).delivered
        assert world.battery_level(0) == 0.0
        assert second.uuid not in world.node(1).delivered

    def test_battery_off_by_default(self):
        world = make_world_with_battery(capacity=None)
        assert world.battery_level(0) is None

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            make_world_with_battery(capacity=0.0)

    def test_config_plumbs_battery_through(self):
        config = ScenarioConfig.tiny(battery_capacity=1e9)
        result = run_scenario(config, "chitchat", seed=1)
        assert 0.0 <= result.mdr <= 1.0


def make_world_with_battery(capacity):
    nodes = [
        Node(0, [], buffer_capacity=1_000_000),
        Node(1, ["flood"], buffer_capacity=1_000_000),
    ]
    return World(
        Engine(), nodes, EpidemicRouter(),
        link_speed=1_000.0, battery_capacity=capacity,
    )


class TestPromiseCleanup:
    def _protocol(self):
        params = IncentiveParams(initial_tokens=100.0)
        return IncentiveChitChatRouter(
            params=params,
            rating_model=RatingModel(params, noise=0.0, confidence_low=1.0),
        )

    def test_expired_message_clears_promise(self):
        router = self._protocol()
        world = make_world({0: [], 1: [], 2: ["flood"]}, router, ttl=200.0)
        message = make_message(source=0, size=100, keywords=("flood",),
                               content=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(
            contact(10.0, 100.0, 1, 2),
            contact(110.0, 150.0, 0, 1),
        ))
        world.run(1_000.0)
        # The relayed copy expired, and the promise died with it.
        assert message.uuid not in world.node(1).buffer
        assert router.promise_held(1, message.uuid) == 0.0

    def test_evicted_message_clears_promise(self):
        router = self._protocol()
        world = make_world(
            {0: [], 1: [], 2: ["flood"]}, router, buffer_capacity=1_500,
        )
        first = make_message(source=0, size=1_000, keywords=("flood",),
                             content=("flood",))
        second = make_message(source=0, size=1_000, keywords=("flood",),
                              content=("flood",))
        world.inject_message(first)
        world.load_contact_trace(trace_of(
            contact(10.0, 200.0, 1, 2),
            contact(300.0, 400.0, 0, 1),
            contact(500.0, 600.0, 0, 1),
        ))
        world.engine.schedule_at(450.0, lambda: world.inject_message(second))
        world.run(1_000.0)
        # The second relay copy evicted the first from node 1's buffer.
        if first.uuid not in world.node(1).buffer:
            assert router.promise_held(1, first.uuid) == 0.0


class TestAsciiChart:
    def test_basic_rendering(self):
        chart = ascii_chart(
            {"mdr": [(0.0, 0.5), (20.0, 1.0)]}, width=10, y_max=1.0,
        )
        lines = chart.splitlines()
        assert "[a] mdr" in lines[0]
        assert "|#####.....|" in chart
        assert "|##########|" in chart

    def test_multiple_series_get_distinct_markers(self):
        chart = ascii_chart({
            "alpha": [(0.0, 1.0)],
            "beta": [(0.0, 2.0)],
        })
        assert "[a] alpha" in chart
        assert "[b] beta" in chart

    def test_values_clamped_to_width(self):
        chart = ascii_chart(
            {"s": [(0.0, 5.0)]}, width=10, y_max=1.0,
        )
        assert "|##########|" in chart

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})
        with pytest.raises(ValueError):
            ascii_chart({"s": [(0.0, 1.0)]}, width=0)

    def test_figure_format_includes_chart(self):
        from repro.experiments.figures import FigureResult

        figure = FigureResult(
            figure_id="9.9", title="demo", x_label="x", y_label="y",
            series={"s": [(0.0, 0.5)]},
        )
        text = figure.format()
        assert "y by x" in text
        assert "|" in text
