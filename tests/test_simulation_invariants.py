"""End-to-end fuzzing: global invariants over randomised scenarios.

Hypothesis draws small random scenarios (population mix, seeds, scheme)
and full simulations are checked against the invariants that must hold
no matter what the draw was: token conservation, delivery accounting,
transfer bookkeeping, and custody consistency.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.protocol import IncentiveChitChatRouter
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario

SCHEMES = st.sampled_from(
    ["incentive", "chitchat", "epidemic", "spray-and-wait",
     "two-hop-reward"]
)


@st.composite
def scenarios(draw):
    return dict(
        n_nodes=draw(st.integers(min_value=4, max_value=12)),
        selfish=draw(st.sampled_from([0.0, 0.25, 0.5])),
        malicious=draw(st.sampled_from([0.0, 0.25])),
        seed=draw(st.integers(min_value=0, max_value=50)),
        scheme=draw(SCHEMES),
    )


def run(params):
    config = ScenarioConfig(
        n_nodes=params["n_nodes"],
        area=(300.0, 300.0),
        duration=900.0,
        keyword_pool=20,
        interests_per_node=5,
        buffer_capacity=5_000_000,
        message_interval=90.0,
        ttl=900.0,
        selfish_fraction=params["selfish"],
        malicious_fraction=params["malicious"],
    )
    return run_scenario(config, params["scheme"], seed=params["seed"])


class TestSimulationInvariants:
    @given(scenarios())
    @settings(max_examples=25, deadline=None)
    def test_global_invariants(self, params):
        result = run(params)
        metrics = result.metrics

        # --- Delivery accounting -----------------------------------
        assert 0.0 <= result.mdr <= 1.0
        assert metrics.delivered_pairs() <= metrics.intended_pairs()
        for record in metrics.messages:
            assert set(record.delivered_to) <= set(record.intended)
            for destination, at in record.delivered_to.items():
                assert record.created_at <= at <= 900.0 + 1e-9

        # --- Transfer bookkeeping -----------------------------------
        settled = metrics.transfers_completed + metrics.transfers_aborted
        assert settled <= metrics.transfers_started
        # Anything unsettled was still in flight when the clock stopped;
        # there can be at most one in-flight transfer per link direction,
        # bounded loosely by the population size squared.
        assert metrics.transfers_started - settled <= (
            params["n_nodes"] ** 2
        )

        # --- Token economy ------------------------------------------
        ledger = getattr(result.router, "ledger", None)
        if ledger is not None and ledger.total_endowment() > 0:
            assert ledger.total_supply() == pytest.approx(
                ledger.total_endowment()
            )
            assert all(
                balance >= -1e-9 for balance in ledger.balances().values()
            )
            assert ledger.escrowed_total() == pytest.approx(0.0)

        # --- Reputation scale ----------------------------------------
        if isinstance(result.router, IncentiveChitChatRouter):
            reputation = result.router.reputation
            for observer in range(params["n_nodes"]):
                book = reputation.book(observer)
                for subject in book.known_subjects():
                    assert 0.0 <= book.score(subject) <= 5.0 + 1e-9

    @given(scenarios())
    @settings(max_examples=15, deadline=None)
    def test_custody_consistency(self, params):
        result = run(params)
        # Every buffered message was marked seen, and every generated
        # message is attributed to its source.
        # (The runner does not expose the world; rebuild cheap proxies
        # from the router's bound world.)
        world = result.router.world
        for node_id in world.node_ids():
            node = world.node(node_id)
            for message in node.buffer:
                assert node.has_seen(message.uuid)
            for uuid in node.generated:
                record = result.metrics.record_for(uuid)
                assert record is not None
                assert record.source == node_id

    @given(st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_determinism_across_replays(self, seed):
        params = dict(
            n_nodes=8, selfish=0.25, malicious=0.0,
            seed=seed, scheme="incentive",
        )
        first = run(params).summary()
        second = run(params).summary()
        assert first == second
