"""Unit tests for the Friis energy model."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.network.energy import SPEED_OF_LIGHT, EnergyModel


class TestFriis:
    def test_wavelength_from_frequency(self):
        model = EnergyModel(frequency_hz=2.4e9)
        assert model.wavelength == pytest.approx(SPEED_OF_LIGHT / 2.4e9)

    def test_path_loss_formula(self):
        model = EnergyModel(frequency_hz=2.4e9)
        distance = 100.0
        expected = (4 * math.pi * distance / model.wavelength) ** 2
        assert model.path_loss(distance) == pytest.approx(expected)

    def test_path_loss_grows_quadratically(self):
        model = EnergyModel()
        assert model.path_loss(200.0) == pytest.approx(
            4.0 * model.path_loss(100.0)
        )

    def test_received_power_is_pt_over_loss(self):
        model = EnergyModel(transmit_power=0.2)
        distance = 50.0
        assert model.received_power(distance) == pytest.approx(
            0.2 / model.path_loss(distance)
        )

    def test_near_field_clamped_to_reference_distance(self):
        model = EnergyModel(reference_distance=1.0)
        assert model.path_loss(0.0) == model.path_loss(1.0)
        assert model.received_power(0.5) == model.received_power(1.0)

    def test_negative_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel().path_loss(-1.0)


class TestEnergyAccounting:
    def test_transmit_energy(self):
        model = EnergyModel(transmit_power=0.1)
        assert model.transmit_energy(4.0) == pytest.approx(0.4)

    def test_receive_energy_scales_with_distance(self):
        model = EnergyModel()
        near = model.receive_energy(4.0, 10.0)
        far = model.receive_energy(4.0, 100.0)
        assert near > far > 0.0

    def test_charge_accumulates_per_node(self):
        model = EnergyModel()
        model.charge(1, 0.5)
        model.charge(1, 0.25)
        model.charge(2, 1.0)
        assert model.consumed(1) == pytest.approx(0.75)
        assert model.consumed(2) == pytest.approx(1.0)
        assert model.consumed(3) == 0.0
        assert model.total_consumed() == pytest.approx(1.75)

    def test_negative_charge_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel().charge(1, -0.1)

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel(transmit_power=0.0)
        with pytest.raises(ConfigurationError):
            EnergyModel(frequency_hz=0.0)
        with pytest.raises(ConfigurationError):
            EnergyModel(reference_distance=0.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            EnergyModel().transmit_energy(-1.0)
        with pytest.raises(ConfigurationError):
            EnergyModel().receive_energy(-1.0, 10.0)
