"""Batched buffer selection & grouped gossip: equivalence and lifecycle.

Property tests (Hypothesis) pinning the two per-tick batched fast
paths introduced for the 10k tier to their sequential references:

* ``ChitChatRouter._preselect`` — the fused candidate-filter /
  interest-sum / classification / lexsort pass — must return, for every
  side it stores, exactly what a sequential ``select_messages`` call
  would, including the ``(-strength, uuid)`` tiebreak order.
* ``ReputationSystem.exchange_batch`` — the grouped searchsorted merge
  over all safe pairs of a tick — must leave every book bit-identical
  to pairwise ``exchange`` calls, never share storage between books
  (copy-on-write survives ``forget()``), and fall back correctly for
  negative subject ids.

Plus the regression tests for the three router-state lifecycle
bugfixes that ride along (retry-book pruning, churn-wipe memo
eviction, dark-receiver retransmission guard) — each fails on the
pre-fix code.

Exact ``==`` on floats and exact list equality throughout: the batched
forms evaluate the same IEEE expressions, so drift is a bug.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.incentive import IncentiveParams
from repro.core.reputation import ReputationSystem
from repro.faults import FaultConfig
from repro.experiments.config import ScenarioConfig
from repro.experiments.runner import run_scenario
from repro.network.node import Node
from repro.network.world_soa import SoAWorld
from repro.routing.chitchat import ChitChatRouter
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams

from tests.helpers import make_message, make_world

KEYWORDS = [f"k{i}" for i in range(8)]
N_NODES = 6


# ----------------------------------------------------------------------
# Batched selection vs sequential select_messages
# ----------------------------------------------------------------------
@st.composite
def selection_scenarios(draw):
    """Random interests, weights, buffers, seen-sets and a pair list."""
    interests = [
        draw(st.lists(st.sampled_from(KEYWORDS), min_size=1, max_size=3,
                      unique=True))
        for _ in range(N_NODES)
    ]
    # Extra transient/direct weights poked straight into the tables, so
    # sums and classifications vary beyond the 0.5-direct seeds (ties
    # stay common — good: they exercise the uuid-rank tiebreak).
    weights = [
        {
            keyword: (
                draw(st.sampled_from([0.0, 0.125, 0.25, 0.5, 0.7])),
                draw(st.booleans()),
            )
            for keyword in draw(st.lists(st.sampled_from(KEYWORDS),
                                         max_size=4, unique=True))
        }
        for _ in range(N_NODES)
    ]
    capacities = [
        draw(st.sampled_from([3_000, 1_000_000])) for _ in range(N_NODES)
    ]
    n_messages = draw(st.integers(min_value=0, max_value=12))
    messages = [
        (
            draw(st.integers(min_value=0, max_value=N_NODES - 1)),
            tuple(draw(st.lists(st.sampled_from(KEYWORDS), max_size=3,
                                unique=True))),
            draw(st.sampled_from([1_000, 5_000])),
        )
        for _ in range(n_messages)
    ]
    seen = [
        (
            draw(st.integers(min_value=0, max_value=N_NODES - 1)),
            draw(st.integers(min_value=0, max_value=max(n_messages - 1, 0))),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=8)))
    ]
    n_pairs = draw(st.integers(min_value=0, max_value=6))
    pairs = []
    for _ in range(n_pairs):
        a = draw(st.integers(min_value=0, max_value=N_NODES - 1))
        b = draw(st.integers(min_value=0, max_value=N_NODES - 1))
        if a != b:
            pairs.append((a, b) if a < b else (b, a))
    return interests, weights, capacities, messages, seen, pairs


def _build(interests, weights, capacities, messages, seen):
    """One SoA world + bound ChitChat router over the drawn state."""
    nodes = [
        Node(i, interests[i], buffer_capacity=capacities[i])
        for i in range(N_NODES)
    ]
    router = ChitChatRouter()
    world = SoAWorld(
        Engine(), nodes, router,
        link_speed=1_000.0, streams=RandomStreams(3),
    )
    for i in range(N_NODES):
        table = router.table(i)
        for keyword, (w, d) in weights[i].items():
            kid = table._slot(keyword)
            # Direct pokes keep version at 0 on both twins — the memo
            # caches then agree without replaying a decay history.
            table._weight[kid] = w
            table._direct[kid] = bool(d) or bool(table._direct[kid])
            table._present[kid] = True
    for index, (holder, keywords, size) in enumerate(messages):
        if size > capacities[holder]:
            continue  # the holder itself could never have buffered it
        message = make_message(
            source=holder, size=size, keywords=keywords,
            content=keywords or ("x",), uuid=f"m{index:03d}",
        )
        world.node(holder).buffer.add(message, now=0.0)
    for node_id, message_index in seen:
        if message_index < len(messages):
            world.node(node_id).seen.add(f"m{message_index:03d}")
    return world, router


@given(selection_scenarios())
@settings(max_examples=120, deadline=None)
def test_preselect_matches_sequential(scenario):
    interests, weights, capacities, messages, seen, pairs = scenario
    world_a, router_a = _build(interests, weights, capacities, messages, seen)
    world_b, router_b = _build(interests, weights, capacities, messages, seen)

    router_a.prepare_contact_batch(pairs)
    stored = dict(router_a._preselected)
    # Every side of every safe pair must be stored (both directions).
    for pair in pairs:
        a, b = pair
        if ((pair, a) in router_a._predecayed
                and (pair, b) in router_a._predecayed):
            assert (a, b) in stored and (b, a) in stored

    for (sender, receiver) in stored:
        batched = router_a.select_messages(sender, receiver)
        sequential = router_b.select_messages(sender, receiver)
        assert (
            [(m.uuid, role) for m, role in batched]
            == [(m.uuid, role) for m, role in sequential]
        )
    # Unsafe sides fall back to the sequential path on the batched
    # router too — results must agree there as well.
    for pair in pairs:
        for sender, receiver in (pair, pair[::-1]):
            if (sender, receiver) in stored:
                continue
            assert (
                [(m.uuid, r) for m, r in
                 router_a.select_messages(sender, receiver)]
                == [(m.uuid, r) for m, r in
                    router_b.select_messages(sender, receiver)]
            )


def test_preselect_consumed_once():
    """A popped entry is gone: the second call takes the live path."""
    interests = [["k0"], ["k1"]] + [["k2"]] * (N_NODES - 2)
    weights = [{} for _ in range(N_NODES)]
    capacities = [1_000_000] * N_NODES
    messages = [(0, ("k1",), 1_000)]
    world, router = _build(interests, weights, capacities, messages, [])
    router.prepare_contact_batch([(0, 1)])
    assert (0, 1) in router._preselected
    first = router.select_messages(0, 1)
    assert (0, 1) not in router._preselected
    assert [(m.uuid, r) for m, r in router.select_messages(0, 1)] == [
        (m.uuid, r) for m, r in first
    ]


# ----------------------------------------------------------------------
# Grouped gossip merge vs pairwise exchange
# ----------------------------------------------------------------------
@st.composite
def gossip_scenarios(draw):
    n_nodes = draw(st.integers(min_value=2, max_value=12))
    books = []
    for _ in range(n_nodes):
        subjects = draw(st.lists(
            st.integers(min_value=0, max_value=60), max_size=8, unique=True,
        ))
        subjects.sort()
        values = [
            draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
            for _ in subjects
        ]
        books.append((subjects, values))
    order = draw(st.permutations(range(n_nodes)))
    n_pairs = draw(st.integers(min_value=0, max_value=n_nodes // 2))
    pairs = [
        (order[2 * k], order[2 * k + 1]) for k in range(n_pairs)
    ]
    negative = draw(st.booleans())
    return books, pairs, negative


def _seed_books(system, books, negative):
    for node_id, (subjects, values) in enumerate(books):
        book = system.book(node_id)
        subs = list(subjects)
        vals = list(values)
        if negative and node_id == 0 and subs:
            subs[0] = -1  # sentinel id: forces the scalar fallback
        book._subjects = np.asarray(subs, dtype=np.int64)
        book._values = np.asarray(vals, dtype=np.float64)


@given(gossip_scenarios())
@settings(max_examples=150, deadline=None)
def test_exchange_batch_matches_pairwise(scenario):
    books, pairs, negative = scenario
    params = IncentiveParams()
    sequential = ReputationSystem(params)
    batched = ReputationSystem(params)
    _seed_books(sequential, books, negative)
    _seed_books(batched, books, negative)

    for a, b in pairs:
        sequential.exchange(a, b)
    results = batched.exchange_batch(pairs)

    assert [(a, b) for a, b, _, _ in results] == pairs
    for node_id in range(len(books)):
        expected = sequential.book(node_id)
        actual = batched.book(node_id)
        assert np.array_equal(expected._subjects, actual._subjects)
        assert np.array_equal(expected._values, actual._values)

    # Copy-on-write: no two books may share storage after the grouped
    # merge (a forget() on one must never edit another).
    ids = list(range(len(books)))
    for i in ids:
        for j in ids[i + 1:]:
            left, right = batched.book(i), batched.book(j)
            if left._subjects.size and right._subjects.size:
                assert not np.shares_memory(left._subjects, right._subjects)
                assert not np.shares_memory(left._values, right._values)


def test_forget_after_batch_is_isolated():
    params = IncentiveParams()
    system = ReputationSystem(params)
    _seed_books(
        system,
        [([1, 2, 3], [1.0, 2.0, 3.0]), ([2, 4], [4.0, 1.5]),
         ([1, 5], [2.5, 0.5]), ([3, 4], [1.0, 1.0])],
        negative=False,
    )
    system.exchange_batch([(0, 1), (2, 3)])
    snapshot = {
        i: (system.book(i)._subjects.copy(), system.book(i)._values.copy())
        for i in range(4)
    }
    system.book(0).forget(2)
    for i in (1, 2, 3):
        assert np.array_equal(system.book(i)._subjects, snapshot[i][0])
        assert np.array_equal(system.book(i)._values, snapshot[i][1])


@st.composite
def overlapping_gossip_scenarios(draw):
    """Like :func:`gossip_scenarios` but with node reuse across pairs,
    so the rounds driver must actually decompose and defer."""
    n_nodes = draw(st.integers(min_value=2, max_value=8))
    books = []
    for _ in range(n_nodes):
        subjects = draw(st.lists(
            st.integers(min_value=0, max_value=60), max_size=8, unique=True,
        ))
        subjects.sort()
        values = [
            draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
            for _ in subjects
        ]
        books.append((subjects, values))
    n_pairs = draw(st.integers(min_value=0, max_value=10))
    pairs = []
    for _ in range(n_pairs):
        a = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        b = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        if a == b or (a, b) in pairs or (b, a) in pairs:
            continue
        pairs.append((a, b))
    negative = draw(st.booleans())
    return books, pairs, negative


@given(overlapping_gossip_scenarios())
@settings(max_examples=150, deadline=None)
def test_exchange_batch_rounds_matches_pairwise(scenario):
    """The rounds driver + in-order deferred application must replay the
    exact sequential book trajectory: after applying pair k's deferred
    assignment, every book matches a sequential run of pairs 0..k."""
    books, pairs, negative = scenario
    params = IncentiveParams()
    sequential = ReputationSystem(params)
    batched = ReputationSystem(params)
    _seed_books(sequential, books, negative)
    _seed_books(batched, books, negative)

    planned = batched.exchange_batch_rounds(pairs)
    by_pair = {(entry[0], entry[1]): entry for entry in planned}
    assert set(by_pair) == set(pairs)
    assert len(planned) == len(pairs)

    for a, b in pairs:
        sequential.exchange(a, b)
        merged_a, merged_b, deferred = (
            by_pair[(a, b)][2], by_pair[(a, b)][3], by_pair[(a, b)][4],
        )
        if deferred is not None:
            book_a, subj_a, val_a, book_b, subj_b, val_b = deferred
            book_a._subjects = subj_a
            book_a._values = val_a
            book_b._subjects = subj_b
            book_b._values = val_b
        # Mid-tick reads between exchange points must see the
        # sequential trajectory for the pair's own members.
        for node_id in (a, b):
            assert np.array_equal(
                sequential.book(node_id)._subjects,
                batched.book(node_id)._subjects,
            )
            assert np.array_equal(
                sequential.book(node_id)._values,
                batched.book(node_id)._values,
            )

    for node_id in range(len(books)):
        expected = sequential.book(node_id)
        actual = batched.book(node_id)
        assert np.array_equal(expected._subjects, actual._subjects)
        assert np.array_equal(expected._values, actual._values)


# ----------------------------------------------------------------------
# Satellite bugfix regressions
# ----------------------------------------------------------------------
class TestRetryBookLifecycle:
    """S1: ``_retry_counts`` must drain as deliveries/expiries land."""

    def test_retry_book_empty_after_run_drains(self):
        config = ScenarioConfig.tiny(
            ttl=600.0,
            faults=FaultConfig(loss_probability=0.25),
            max_retransmissions=2,
        )
        result = run_scenario(config, "chitchat", seed=3)
        router = result.router
        # The run must actually have exercised the retry machinery,
        # else the emptiness assertion proves nothing.
        assert result.fault_summary()["retransmissions"] > 0
        # Messages created in the final TTL window outlive the run;
        # one more sweep past their deadline completes the drain.
        router.world._sweep_ttl(config.duration + config.ttl + 1.0)
        assert router._retry_counts == {}

    def test_delivery_prunes_receiver_entry(self):
        router = ChitChatRouter()
        make_world({0: ["flood"], 1: ["rescue-team"]}, router)
        router._retry_counts["u1"] = {1: 2, 2: 1}
        router._prune_retries("u1", 1)
        assert router._retry_counts == {"u1": {2: 1}}
        router._prune_retries("u1", 2)
        assert router._retry_counts == {}

    def test_expiry_drops_whole_uuid_book(self):
        router = ChitChatRouter()
        make_world({0: ["flood"], 1: ["rescue-team"]}, router)
        message = make_message(uuid="u2")
        router._retry_counts["u2"] = {1: 1, 3: 2}
        router.on_message_expired(0, message)
        assert router._retry_counts == {}


class _StubTransfer:
    def __init__(self, message, sender, receiver, reason):
        self.message = message
        self.sender = sender
        self.receiver = receiver
        self.abort_reason = reason


class _StubRetryWorld:
    """Just enough world for ``_maybe_retransmit`` unit tests."""

    def __init__(self, available):
        self._available = available
        self.scheduled = []

    def node_available(self, node_id):
        return self._available

    def schedule_in(self, delay, callback, *, label=""):
        self.scheduled.append(delay)


class TestDarkReceiverGuard:
    """S3: a retry toward a dark node must not consume the budget."""

    def _router(self, available):
        router = ChitChatRouter(max_retransmissions=2)
        router.bind(_StubRetryWorld(available))
        return router

    def test_budget_not_consumed_when_receiver_dark(self):
        router = self._router(available=False)
        transfer = _StubTransfer(make_message(uuid="u3"), 0, 1, "loss")
        router._maybe_retransmit(transfer)
        assert router._retry_counts == {}
        assert router.world.scheduled == []

    def test_budget_consumed_when_receiver_up(self):
        router = self._router(available=True)
        transfer = _StubTransfer(make_message(uuid="u3"), 0, 1, "loss")
        router._maybe_retransmit(transfer)
        assert router._retry_counts == {"u3": {1: 1}}
        assert len(router.world.scheduled) == 1

    def test_blackout_grid_run_stays_conservative(self):
        """End-to-end: battery blackouts + loss + retries stay sane."""
        config = ScenarioConfig.tiny(
            battery_capacity=2.0,  # joules: dies after a few transfers
            faults=FaultConfig(
                loss_probability=0.2,
                recharge_interval=300.0, recharge_amount=1.0,
            ),
            max_retransmissions=2,
        )
        result = run_scenario(config, "incentive", seed=2)
        ledger = result.router.ledger
        assert result.metrics.blackouts > 0
        assert ledger.total_supply() == pytest.approx(
            ledger.total_endowment(), abs=1e-6
        )


class TestWipeEvictsRouterState:
    """S2: churn wipe must reset tables and evict version-keyed memos."""

    def test_post_restart_sums_match_cold_computation(self):
        router = ChitChatRouter()
        world = make_world({0: ["flood"], 1: ["rescue-team"]}, router)
        message = make_message(keywords=("power-grid",),
                               content=("power-grid",))
        table = router.table(0)
        table.add_direct("power-grid", now=0.0)  # version 0 -> 1
        warm = router.interest_sum(0, message)   # memo at version 1
        assert warm == 0.5

        world.on_node_crashed(0, wipe_state=True)
        # The wipe restarted the table: version 0, subscriptions only.
        assert router.table(0).version == 0
        assert router.table(0).weight("power-grid") == 0.0

        # Collide the version: one update brings the restarted table
        # back to version 1, where the stale memo was keyed.  Pre-fix,
        # interest_sum would serve 0.5 for weights that no longer
        # exist.
        router.table(0).add_direct("shelter", now=1.0)
        assert router.table(0).version == 1
        cold = router.table(0).sum_for_ids(
            router._message_ids(message, router._intern_key(message))
        )
        assert router.interest_sum(0, message) == cold == 0.0

    def test_wipe_only_touches_the_crashed_node(self):
        router = ChitChatRouter()
        world = make_world({0: ["flood"], 1: ["rescue-team"]}, router)
        table_1 = router.table(1)
        table_1.add_direct("shelter", now=0.0)
        before = router.interest_sum(1, make_message(
            keywords=("shelter",), content=("shelter",)))
        world.on_node_crashed(0, wipe_state=True)
        assert router.table(1).version == table_1.version
        assert router.interest_sum(1, make_message(
            keywords=("shelter",), content=("shelter",))) == before

    def test_crash_without_wipe_keeps_state(self):
        router = ChitChatRouter()
        world = make_world({0: ["flood"], 1: ["rescue-team"]}, router)
        table = router.table(0)
        table.add_direct("power-grid", now=0.0)
        world.on_node_crashed(0, wipe_state=False)
        assert table.weight("power-grid") == 0.5
        assert table.version == 1
