"""Unit tests for scenario configuration."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments.config import ScenarioConfig


class TestDefaults:
    def test_paper_scale_matches_table_5_1(self):
        config = ScenarioConfig.paper_scale()
        assert config.n_nodes == 500
        assert config.keyword_pool == 200
        assert config.interests_per_node == 20
        assert config.link_speed == 250_000.0
        assert config.transmission_radius == 100.0
        assert config.buffer_capacity == 250_000_000
        assert config.duration == 86_400.0
        assert config.area_km2 == pytest.approx(5.0)
        assert config.incentive.relay_threshold == 0.8
        assert config.incentive.initial_tokens == 200.0

    def test_small_preserves_density_order(self):
        small = ScenarioConfig.small()
        paper = ScenarioConfig.paper_scale()
        # Same order of magnitude of nodes per km^2.
        assert 0.3 <= small.node_density / paper.node_density <= 3.0

    def test_tiny_is_fast_scale(self):
        tiny = ScenarioConfig.tiny()
        assert tiny.n_nodes <= 25
        assert tiny.duration <= 3_600.0

    def test_presets_accept_overrides(self):
        config = ScenarioConfig.small(selfish_fraction=0.4)
        assert config.selfish_fraction == 0.4


class TestValidation:
    def test_too_few_nodes_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(n_nodes=1)

    def test_pool_smaller_than_interests_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(keyword_pool=10, interests_per_node=20)

    def test_invalid_fractions_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(selfish_fraction=1.5)
        with pytest.raises(ConfigurationError):
            ScenarioConfig(malicious_fraction=-0.1)


class TestHelpers:
    def test_replace_returns_modified_copy(self):
        base = ScenarioConfig.small()
        changed = base.replace(n_nodes=99)
        assert changed.n_nodes == 99
        assert base.n_nodes != 99

    def test_with_tokens(self):
        config = ScenarioConfig.small().with_tokens(42.0)
        assert config.incentive.initial_tokens == 42.0
        # Other incentive parameters survive the update.
        assert config.incentive.relay_threshold == 0.8

    def test_table_rows_cover_table_5_1(self):
        rows = dict(ScenarioConfig.paper_scale().table_rows())
        assert rows["Number of Participants"] == 500
        assert rows["Pool of Social Interest Keywords"] == 200
        assert rows["Threshold for relay"] == 0.8
        assert "200" in rows["Number of initial tokens"]
        assert len(rows) == 11  # the table has 11 entries
