"""Tests for the parallel experiment runner and the contact-trace cache."""

import pickle

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    RunDigest,
    RunFailure,
    RunSpec,
    ScenarioConfig,
    TraceCache,
    build_contact_trace,
    ensure_success,
    run_averaged,
    run_comparison,
    run_specs,
    sweep,
    trace_cache_key,
)
from repro.experiments.parallel import execute_spec, resolve_workers
from repro.experiments import runner as runner_module
from repro.experiments import trace_cache as trace_cache_module


@pytest.fixture(scope="module")
def tiny():
    return ScenarioConfig.tiny()


def _trace_tuples(trace):
    return [(c.start, c.end, c.pair) for c in trace]


class TestRunSpecExecution:
    def test_spec_is_picklable(self, tiny):
        spec = RunSpec(tiny, "chitchat", 1, {"sample_ratings": True})
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.scheme == "chitchat"
        assert clone.run_kwargs == {"sample_ratings": True}

    def test_execute_spec_returns_digest(self, tiny):
        digest = execute_spec(RunSpec(tiny, "direct", 1))
        assert isinstance(digest, RunDigest)
        assert 0.0 <= digest.mdr <= 1.0
        assert digest.traffic >= 0
        assert digest.summary()["mdr"] == digest.mdr

    def test_execute_spec_contains_failures(self, tiny):
        failure = execute_spec(RunSpec(tiny, "carrier-pigeon", 7))
        assert isinstance(failure, RunFailure)
        assert failure.scheme == "carrier-pigeon"
        assert failure.seed == 7
        assert "ConfigurationError" in failure.error
        assert "carrier-pigeon" in failure.traceback

    def test_digest_matches_full_result(self, tiny):
        from repro.experiments import run_scenario

        result = run_scenario(tiny, "incentive", seed=2)
        digest = execute_spec(RunSpec(tiny, "incentive", 2))
        assert digest.summary() == result.summary()
        assert digest.metrics.mdr_by_priority() == (
            result.metrics.mdr_by_priority()
        )


class TestRunSpecs:
    def test_pool_preserves_spec_order(self, tiny):
        specs = [RunSpec(tiny, "direct", seed) for seed in (3, 1, 2)]
        outcomes = run_specs(specs, workers=2)
        assert [o.seed for o in outcomes] == [3, 1, 2]

    def test_failed_spec_does_not_poison_pool(self, tiny):
        specs = [
            RunSpec(tiny, "bogus", 1),
            RunSpec(tiny, "direct", 1),
            RunSpec(tiny, "bogus", 2),
        ]
        outcomes = run_specs(specs, workers=2)
        assert isinstance(outcomes[0], RunFailure)
        assert isinstance(outcomes[1], RunDigest)
        assert isinstance(outcomes[2], RunFailure)

    def test_ensure_success_lists_every_casualty(self, tiny):
        outcomes = run_specs(
            [RunSpec(tiny, "bogus", 1), RunSpec(tiny, "bogus", 2)],
            workers=1,
        )
        with pytest.raises(ExperimentError) as excinfo:
            ensure_success(outcomes)
        message = str(excinfo.value)
        assert "(bogus, seed=1)" in message
        assert "(bogus, seed=2)" in message

    def test_run_averaged_raises_on_failure(self, tiny):
        with pytest.raises(ExperimentError):
            run_averaged(tiny, "bogus", [1, 2], workers=2)

    def test_resolve_workers(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers(None) >= 1
        with pytest.raises(ExperimentError):
            resolve_workers(0)


class TestParallelEquivalence:
    def test_run_comparison_digests_match_serial(self, tiny):
        serial = run_comparison(tiny, ["chitchat", "epidemic"], seed=1)
        parallel = run_comparison(
            tiny, ["chitchat", "epidemic"], seed=1, workers=2
        )
        for scheme in ("chitchat", "epidemic"):
            assert parallel[scheme].mdr == serial[scheme].mdr
            assert parallel[scheme].traffic == serial[scheme].traffic
            assert parallel[scheme].summary() == serial[scheme].summary()

    def test_sweep_parallel_matches_serial(self, tiny):
        def vary(cfg, value):
            return cfg.replace(selfish_fraction=value)

        serial = sweep(tiny, vary, [0.0, 0.5], schemes=["chitchat"],
                       seeds=[1], workers=1)
        parallel = sweep(tiny, vary, [0.0, 0.5], schemes=["chitchat"],
                         seeds=[1], workers=2)
        assert [(r["value"], r["scheme"], r["mdr"], r["traffic"])
                for r in serial] == [
            (r["value"], r["scheme"], r["mdr"], r["traffic"])
            for r in parallel
        ]


class TestShardedDetectionUnderPool:
    def test_run_averaged_with_sharded_detection(self, tiny):
        """Region sharding composes with the seed-level process pool."""
        sharded = tiny.replace(detect_regions=3)
        base = run_averaged(tiny, "incentive", [1, 2], workers=2)
        fanned = run_averaged(sharded, "incentive", [1, 2], workers=2)
        assert fanned == base

    def test_spec_with_sharded_config_is_picklable(self, tiny):
        spec = RunSpec(
            tiny.replace(detect_regions=4, detect_workers=2),
            "chitchat", 1,
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.config.detect_regions == 4
        assert clone.config.detect_workers == 2


class TestTraceCacheKey:
    def test_key_stable_for_equal_configs(self, tiny):
        assert trace_cache_key(tiny, 1) == trace_cache_key(
            ScenarioConfig.tiny(), 1
        )

    def test_key_ignores_non_mobility_fields(self, tiny):
        behavioural = tiny.replace(
            selfish_fraction=0.4, malicious_fraction=0.2
        ).with_tokens(999.0)
        assert trace_cache_key(tiny, 1) == trace_cache_key(behavioural, 1)

    def test_key_ignores_world_core_and_sharding(self, tiny):
        """Same mobility -> same cached trace, whatever core runs it."""
        variant = tiny.replace(
            world_core="object", detect_regions=4, detect_workers=2
        )
        assert trace_cache_key(tiny, 1) == trace_cache_key(variant, 1)

    def test_key_sensitive_to_mobility_fields_and_seed(self, tiny):
        base = trace_cache_key(tiny, 1)
        assert trace_cache_key(tiny, 2) != base
        assert trace_cache_key(tiny.replace(n_nodes=21), 1) != base
        assert trace_cache_key(
            tiny.replace(transmission_radius=99.0), 1
        ) != base
        assert trace_cache_key(tiny.replace(mobility="manhattan"), 1) != base


class TestTraceCache:
    def test_round_trip_is_exact(self, tiny, tmp_path):
        cache = TraceCache(tmp_path)
        built = build_contact_trace(tiny, 1, cache=cache)
        loaded = cache.get(tiny, 1)
        assert _trace_tuples(loaded) == _trace_tuples(built)

    def test_cache_hit_skips_contact_detection(self, tiny, tmp_path,
                                               monkeypatch):
        """The issue's acceptance criterion: a hit never re-detects."""
        cache = TraceCache(tmp_path)
        build_contact_trace(tiny, 1, cache=cache)  # populate

        calls = []
        real_detect = runner_module.detect_contacts

        def counting_detect(*args, **kwargs):
            calls.append(1)
            return real_detect(*args, **kwargs)

        monkeypatch.setattr(
            runner_module, "detect_contacts", counting_detect
        )
        trace = build_contact_trace(tiny, 1, cache=cache)
        assert calls == []
        assert cache.hits == 1
        assert len(trace) > 0

    def test_corrupt_entry_is_rebuilt(self, tiny, tmp_path):
        cache = TraceCache(tmp_path)
        build_contact_trace(tiny, 1, cache=cache)
        cache.path_for(tiny, 1).write_bytes(b"not an npz file")
        assert cache.get(tiny, 1) is None
        rebuilt = build_contact_trace(tiny, 1, cache=cache)
        assert len(rebuilt) > 0
        assert cache.get(tiny, 1) is not None

    def test_lru_eviction_keeps_newest(self, tiny, tmp_path):
        import os

        cache = TraceCache(tmp_path, max_entries=2)
        for index, seed in enumerate([1, 2, 3]):
            build_contact_trace(tiny, seed, cache=cache)
            # Stamp strictly increasing mtimes: filesystem resolution
            # can be too coarse for back-to-back writes.
            os.utime(cache.path_for(tiny, seed), (index, index))
        assert len(cache) == 2
        assert cache.get(tiny, 1) is None  # oldest evicted
        assert cache.get(tiny, 3) is not None

    def test_max_entries_validated(self, tmp_path):
        with pytest.raises(ValueError):
            TraceCache(tmp_path, max_entries=0)

    def test_default_cache_from_env(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace_cache_module.ENV_VAR, str(tmp_path))
        trace_cache_module.set_default_cache(None)
        try:
            # Force lazy re-resolution from the (patched) environment.
            trace_cache_module._default_cache = trace_cache_module._UNSET
            cache = trace_cache_module.get_default_cache()
            assert cache is not None
            assert cache.directory == tmp_path
        finally:
            trace_cache_module.set_default_cache(None)

    def test_workers_share_cache_directory(self, tiny, tmp_path):
        cache = TraceCache(tmp_path)
        outcomes = run_specs(
            [RunSpec(tiny, "direct", 1), RunSpec(tiny, "direct", 2)],
            workers=2,
            cache=cache,
        )
        ensure_success(outcomes)
        # Each worker built and published its seed's trace.
        assert cache.get(tiny, 1) is not None
        assert cache.get(tiny, 2) is not None


class TestRetries:
    """run_specs retries transient failures with exponential backoff."""

    def _flaky_execute(self, fail_times):
        """An execute_spec stand-in that fails the first N calls."""
        calls = []

        def fake(spec):
            calls.append(spec)
            if len(calls) <= fail_times:
                return RunFailure(
                    scheme=spec.scheme, seed=spec.seed,
                    error="RuntimeError: transient",
                )
            return execute_spec(spec)  # the real, unpatched function

        return fake, calls

    def test_transient_failure_heals(self, tiny, monkeypatch):
        from repro.experiments import parallel as parallel_module

        fake, calls = self._flaky_execute(fail_times=1)
        monkeypatch.setattr(parallel_module, "execute_spec", fake)
        outcomes = parallel_module.run_specs(
            [RunSpec(tiny, "direct", 1)],
            workers=1, max_retries=2, retry_backoff=0.0,
        )
        assert isinstance(outcomes[0], RunDigest)
        assert outcomes[0].attempts == 2
        assert len(calls) == 2

    def test_deterministic_failure_exhausts_budget(self, tiny):
        # An unknown scheme fails identically on every attempt.
        outcomes = run_specs(
            [RunSpec(tiny, "no-such-scheme", 1)],
            workers=1, max_retries=2, retry_backoff=0.0,
        )
        failure = outcomes[0]
        assert isinstance(failure, RunFailure)
        assert failure.attempts == 3  # initial + 2 retries

    def test_zero_retries_fails_fast(self, tiny):
        outcomes = run_specs(
            [RunSpec(tiny, "no-such-scheme", 1)],
            workers=1, max_retries=0,
        )
        assert isinstance(outcomes[0], RunFailure)
        assert outcomes[0].attempts == 1

    def test_success_records_single_attempt(self, tiny):
        outcomes = run_specs(
            [RunSpec(tiny, "direct", 1)], workers=1, retry_backoff=0.0
        )
        assert outcomes[0].attempts == 1

    def test_backoff_is_exponential(self, tiny, monkeypatch):
        from repro.experiments import parallel as parallel_module

        sleeps = []
        monkeypatch.setattr(
            parallel_module.time, "sleep", sleeps.append
        )
        run_specs(
            [RunSpec(tiny, "no-such-scheme", 1)],
            workers=1, max_retries=3, retry_backoff=0.5,
        )
        assert sleeps == [0.5, 1.0, 2.0]

    def test_negative_budgets_rejected(self, tiny):
        with pytest.raises(ExperimentError):
            run_specs([RunSpec(tiny, "direct", 1)], max_retries=-1)
        with pytest.raises(ExperimentError):
            run_specs([RunSpec(tiny, "direct", 1)], retry_backoff=-1.0)

    def test_pool_path_retries_failures(self, tiny):
        # Mixed batch across a real pool: the good spec succeeds on the
        # first round, the bad one is retried and keeps failing.
        outcomes = run_specs(
            [RunSpec(tiny, "direct", 1), RunSpec(tiny, "no-such-scheme", 1)],
            workers=2, max_retries=1, retry_backoff=0.0,
        )
        assert isinstance(outcomes[0], RunDigest)
        assert outcomes[0].attempts == 1
        assert isinstance(outcomes[1], RunFailure)
        assert outcomes[1].attempts == 2


class TestFaultSummaryDigests:
    def test_digest_carries_fault_summary(self, tiny):
        from repro.faults import FaultConfig

        faulted = tiny.replace(
            faults=FaultConfig(loss_probability=0.3)
        )
        digest = execute_spec(RunSpec(faulted, "incentive", 1))
        fault_data = digest.fault_summary()
        assert fault_data["transfers_lost"] > 0
        assert fault_data["double_payments"] == 0.0

    def test_digest_matches_serial_run(self, tiny):
        from repro.experiments import run_scenario
        from repro.faults import FaultConfig

        faulted = tiny.replace(
            faults=FaultConfig(loss_probability=0.2)
        )
        digest = execute_spec(RunSpec(faulted, "incentive", 2))
        result = run_scenario(faulted, "incentive", 2)
        assert digest.fault_summary() == result.fault_summary()

    def test_digest_survives_pickling(self, tiny):
        from repro.faults import FaultConfig

        faulted = tiny.replace(
            faults=FaultConfig(loss_probability=0.2)
        )
        digest = execute_spec(RunSpec(faulted, "incentive", 1))
        clone = pickle.loads(pickle.dumps(digest))
        assert clone.fault_summary() == digest.fault_summary()
        assert clone.attempts == digest.attempts


class TestCacheIntegrity:
    """sha256 sidecars: corruption is detected, quarantined, rebuilt."""

    def test_put_writes_sidecar(self, tiny, tmp_path):
        cache = TraceCache(tmp_path)
        build_contact_trace(tiny, 1, cache=cache)
        path = cache.path_for(tiny, 1)
        sidecar = cache.digest_path_for(path)
        assert sidecar.exists()
        assert sidecar.read_text().strip() == cache._sha256_of(path)

    def test_bit_rot_quarantined_and_rebuilt(self, tiny, tmp_path):
        cache = TraceCache(tmp_path)
        build_contact_trace(tiny, 1, cache=cache)
        path = cache.path_for(tiny, 1)
        # Flip one byte mid-file: still a loadable npz prefix for some
        # corruptions, but the digest always catches it.
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))

        assert cache.get(tiny, 1) is None
        assert cache.corrupt == 1
        assert not path.exists()
        assert not cache.digest_path_for(path).exists()

        rebuilt = build_contact_trace(tiny, 1, cache=cache)
        assert len(rebuilt) > 0
        assert cache.get(tiny, 1) is not None

    def test_unparseable_entry_counts_as_corrupt(self, tiny, tmp_path):
        cache = TraceCache(tmp_path)
        build_contact_trace(tiny, 1, cache=cache)
        path = cache.path_for(tiny, 1)
        path.write_bytes(b"not an npz file")
        cache.digest_path_for(path).write_text(
            cache._sha256_of(path) + "\n"
        )  # digest matches, so the parse guard must catch it
        assert cache.get(tiny, 1) is None
        assert cache.corrupt == 1
        assert not path.exists()

    def test_legacy_entry_without_sidecar_accepted(self, tiny, tmp_path):
        cache = TraceCache(tmp_path)
        built = build_contact_trace(tiny, 1, cache=cache)
        cache.digest_path_for(cache.path_for(tiny, 1)).unlink()
        loaded = cache.get(tiny, 1)
        assert _trace_tuples(loaded) == _trace_tuples(built)
        assert cache.corrupt == 0

    def test_sidecars_not_counted_as_entries(self, tiny, tmp_path):
        cache = TraceCache(tmp_path)
        build_contact_trace(tiny, 1, cache=cache)
        assert len(cache) == 1
        assert all(p.suffix == ".npz" for p in cache.entries())

    def test_clear_removes_sidecars(self, tiny, tmp_path):
        cache = TraceCache(tmp_path)
        build_contact_trace(tiny, 1, cache=cache)
        cache.clear()
        assert list(tmp_path.iterdir()) == []

    def test_prune_removes_sidecars(self, tiny, tmp_path):
        import os

        cache = TraceCache(tmp_path, max_entries=1)
        for index, seed in enumerate([1, 2]):
            build_contact_trace(tiny, seed, cache=cache)
            os.utime(cache.path_for(tiny, seed), (index, index))
        cache.prune()
        remaining = sorted(p.name for p in tmp_path.iterdir())
        assert len(remaining) == 2  # one entry + its sidecar
        assert remaining[1].endswith(".sha256")
