"""Unit tests for the discrete-event engine."""

import pytest

from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_clock_can_start_elsewhere(self):
        assert Engine(start_time=100.0).now == 100.0

    def test_nonfinite_start_time_rejected(self):
        with pytest.raises(SchedulingError):
            Engine(start_time=float("nan"))

    def test_schedule_at_returns_handle_with_time(self):
        engine = Engine()
        handle = engine.schedule_at(5.0, lambda: None, label="x")
        assert handle.time == 5.0
        assert handle.label == "x"
        assert not handle.cancelled

    def test_schedule_in_offsets_from_now(self):
        engine = Engine()
        engine.schedule_at(3.0, lambda: None)
        engine.step()
        handle = engine.schedule_in(2.0, lambda: None)
        assert handle.time == 5.0

    def test_schedule_in_past_rejected(self):
        engine = Engine()
        engine.schedule_at(3.0, lambda: None)
        engine.step()
        with pytest.raises(SchedulingError):
            engine.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SchedulingError):
            Engine().schedule_in(-1.0, lambda: None)

    def test_nonfinite_time_rejected(self):
        with pytest.raises(SchedulingError):
            Engine().schedule_at(float("inf"), lambda: None)

    def test_schedule_at_current_time_allowed(self):
        engine = Engine()
        fired = []
        engine.schedule_at(0.0, lambda: fired.append(True))
        engine.step()
        assert fired == [True]


class TestExecution:
    def test_events_fire_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule_at(3.0, lambda: order.append(3))
        engine.schedule_at(1.0, lambda: order.append(1))
        engine.schedule_at(2.0, lambda: order.append(2))
        engine.run()
        assert order == [1, 2, 3]

    def test_simultaneous_events_fire_in_insertion_order(self):
        engine = Engine()
        order = []
        for tag in range(5):
            engine.schedule_at(1.0, lambda t=tag: order.append(t))
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties_before_insertion_order(self):
        engine = Engine()
        order = []
        engine.schedule_at(1.0, lambda: order.append("late"), priority=1)
        engine.schedule_at(1.0, lambda: order.append("early"), priority=0)
        engine.run()
        assert order == ["early", "late"]

    def test_clock_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule_at(7.5, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [7.5]
        assert engine.now == 7.5

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_step_fires_exactly_one_event(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(2.0, lambda: fired.append(2))
        assert engine.step() is True
        assert fired == [1]

    def test_events_fired_counter(self):
        engine = Engine()
        for t in range(3):
            engine.schedule_at(float(t), lambda: None)
        engine.run()
        assert engine.events_fired == 3

    def test_callback_may_schedule_more_events(self):
        engine = Engine()
        order = []

        def chain():
            order.append(engine.now)
            if engine.now < 3.0:
                engine.schedule_in(1.0, chain)

        engine.schedule_at(1.0, chain)
        engine.run()
        assert order == [1.0, 2.0, 3.0]


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(10.0, lambda: fired.append(10))
        engine.run_until(5.0)
        assert fired == [1]
        assert engine.now == 5.0
        assert engine.pending == 1

    def test_run_until_includes_boundary_events(self):
        engine = Engine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append(5))
        engine.run_until(5.0)
        assert fired == [5]

    def test_run_until_advances_clock_even_with_empty_queue(self):
        engine = Engine()
        engine.run_until(42.0)
        assert engine.now == 42.0

    def test_run_until_in_past_rejected(self):
        engine = Engine(start_time=10.0)
        with pytest.raises(SimulationError):
            engine.run_until(5.0)

    def test_run_until_can_continue(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append(1))
        engine.schedule_at(8.0, lambda: fired.append(8))
        engine.run_until(5.0)
        engine.run_until(10.0)
        assert fired == [1, 8]

    def test_reentrant_run_rejected(self):
        engine = Engine()

        def nested():
            engine.run_until(10.0)

        engine.schedule_at(1.0, nested)
        with pytest.raises(SimulationError):
            engine.run_until(5.0)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule_at(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule_at(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_cancelling_one_event_spares_others(self):
        engine = Engine()
        fired = []
        keep = engine.schedule_at(1.0, lambda: fired.append("keep"))
        drop = engine.schedule_at(1.0, lambda: fired.append("drop"))
        drop.cancel()
        engine.run()
        assert fired == ["keep"]
        assert not keep.cancelled

    def test_cancelled_events_still_counted_as_pending(self):
        engine = Engine()
        handle = engine.schedule_at(1.0, lambda: None)
        handle.cancel()
        assert engine.pending == 1  # lazy deletion
        engine.run()
        assert engine.pending == 0


class TestTieBreakAcrossRunBoundaries:
    """Same-instant events must fire in (priority, insertion) order even
    when scheduling is interleaved with ``run_until`` calls — a regression
    guard for the heap's ``(time, priority, sequence)`` ordering."""

    def test_priority_then_insertion_order_at_same_instant(self):
        engine = Engine()
        fired = []
        engine.schedule_at(5.0, lambda: fired.append("p1-first"), priority=1)
        engine.schedule_at(5.0, lambda: fired.append("p0-first"), priority=0)
        engine.run_until(3.0)  # clock advances, t=5 events untouched
        # More events for the *same* instant, scheduled after a run.
        engine.schedule_at(5.0, lambda: fired.append("p0-second"), priority=0)
        engine.schedule_at(5.0, lambda: fired.append("p1-second"), priority=1)
        engine.run_until(5.0)
        assert fired == ["p0-first", "p0-second", "p1-first", "p1-second"]

    def test_scheduling_at_now_after_run_until(self):
        engine = Engine()
        fired = []
        engine.run_until(5.0)
        # t == now is legal; insertion order breaks the tie.
        engine.schedule_at(5.0, lambda: fired.append("a"))
        engine.schedule_at(5.0, lambda: fired.append("b"))
        engine.run_until(5.0)
        assert fired == ["a", "b"]

    def test_insertion_order_preserved_for_equal_priority(self):
        engine = Engine()
        fired = []
        for tag in ("first", "second", "third"):
            engine.schedule_at(2.0, lambda t=tag: fired.append(t), priority=7)
        engine.run()
        assert fired == ["first", "second", "third"]


class TestCancellationAccounting:
    """Cancelled events are skipped silently: they never run and never
    count toward ``events_fired`` (lazy deletion, see ``Engine.pending``)."""

    def test_run_skips_cancelled_without_counting(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append("keep-1"))
        engine.schedule_at(2.0, lambda: fired.append("drop")).cancel()
        engine.schedule_at(3.0, lambda: fired.append("keep-2"))
        engine.run()
        assert fired == ["keep-1", "keep-2"]
        assert engine.events_fired == 2

    def test_run_until_skips_cancelled_without_counting(self):
        engine = Engine()
        fired = []
        engine.schedule_at(1.0, lambda: fired.append("keep"))
        dropped = engine.schedule_at(1.0, lambda: fired.append("drop"))
        dropped.cancel()
        engine.run_until(10.0)
        assert fired == ["keep"]
        assert engine.events_fired == 1
        # The cancelled event was discarded when its time came around.
        assert engine.pending == 0

    def test_cancelled_event_does_not_advance_clock_observably(self):
        engine = Engine()
        engine.schedule_at(4.0, lambda: None).cancel()
        engine.run_until(2.0)
        assert engine.now == 2.0
        assert engine.pending == 1  # still queued, fires (as a no-op) later
        engine.run_until(10.0)
        assert engine.pending == 0
        assert engine.events_fired == 0

    def test_step_reports_false_when_only_cancelled_remain(self):
        engine = Engine()
        engine.schedule_at(1.0, lambda: None).cancel()
        engine.schedule_at(2.0, lambda: None).cancel()
        assert engine.step() is False
        assert engine.events_fired == 0
        assert engine.pending == 0


class TestHeapCompaction:
    """Mass cancellation triggers a heap compaction; firing order and
    ``events_fired`` accounting must be indistinguishable from the lazy
    path (events are totally ordered by time/priority/sequence)."""

    def test_mass_cancellation_compacts_and_preserves_order(self):
        engine = Engine()
        fired = []
        handles = []
        # Interleave live and doomed events with clashing times and
        # priorities so ordering depends on all three sort keys.
        for i in range(200):
            time = float((i * 7) % 40)
            priority = i % 3
            handles.append(engine.schedule_at(
                time, lambda i=i: fired.append(i), priority=priority,
            ))
        expected = sorted(
            (i for i in range(200) if i % 4 == 0),
            key=lambda i: (float((i * 7) % 40), i % 3, i),
        )
        for i, handle in enumerate(handles):
            if i % 4 != 0:
                handle.cancel()
        # 150 of 200 cancelled: well past the half-queue threshold.  A
        # compaction fires partway through (and resets the counter), so
        # pending lands somewhere between the live count and the
        # original size — but strictly below it.
        assert engine.compactions > 0
        assert 50 <= engine.pending < 200
        engine.run()
        assert fired == expected
        assert engine.events_fired == 50

    def test_small_queues_are_never_compacted(self):
        engine = Engine()
        for _ in range(20):
            engine.schedule_at(1.0, lambda: None).cancel()
        assert engine.compactions == 0
        assert engine.pending == 20  # lazy deletion still applies
        engine.run()
        assert engine.events_fired == 0

    def test_compaction_from_callback_mid_run(self):
        # A callback that cancels most of the queue swaps the heap out
        # from under run_until; the survivors must still fire in order.
        engine = Engine()
        fired = []
        doomed = [
            engine.schedule_at(5.0 + i * 0.25, lambda: fired.append("dead"))
            for i in range(150)
        ]
        for i in range(10):
            engine.schedule_at(50.0 + i, lambda i=i: fired.append(i))

        def purge():
            fired.append("purge")
            for handle in doomed:
                handle.cancel()

        engine.schedule_at(1.0, purge)
        engine.run_until(100.0)
        assert fired == ["purge"] + list(range(10))
        assert engine.compactions > 0
        assert engine.events_fired == 11
        assert engine.now == 100.0

    def test_cancel_remains_idempotent_for_accounting(self):
        engine = Engine()
        handles = [engine.schedule_at(1.0, lambda: None) for _ in range(100)]
        for handle in handles[:40]:
            handle.cancel()
            handle.cancel()  # double-cancel must not inflate the counter
        # 40 of 100 cancelled: below the half-queue compaction threshold.
        assert engine.compactions == 0
        for handle in handles[40:60]:
            handle.cancel()
        assert engine.compactions == 1
        assert 40 <= engine.pending < 100
