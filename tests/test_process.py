"""Unit tests for periodic processes."""

import pytest

from repro.errors import SchedulingError
from repro.sim.engine import Engine
from repro.sim.process import PeriodicProcess


class TestPeriodicProcess:
    def test_fires_on_interval(self):
        engine = Engine()
        ticks = []
        process = PeriodicProcess(engine, 2.0, ticks.append, start_at=0.0)
        process.start()
        engine.run_until(6.0)
        assert ticks == [0.0, 2.0, 4.0, 6.0]

    def test_start_at_defaults_to_now(self):
        engine = Engine()
        engine.schedule_at(5.0, lambda: None)
        engine.step()
        ticks = []
        process = PeriodicProcess(engine, 1.0, ticks.append)
        process.start()
        engine.run_until(7.0)
        assert ticks == [5.0, 6.0, 7.0]

    def test_until_bound_respected(self):
        engine = Engine()
        ticks = []
        process = PeriodicProcess(
            engine, 1.0, ticks.append, start_at=0.0, until=2.5
        )
        process.start()
        engine.run_until(10.0)
        assert ticks == [0.0, 1.0, 2.0]
        assert not process.running

    def test_stop_cancels_future_ticks(self):
        engine = Engine()
        ticks = []
        process = PeriodicProcess(engine, 1.0, ticks.append, start_at=0.0)
        process.start()
        engine.run_until(2.0)
        process.stop()
        engine.run_until(5.0)
        assert ticks == [0.0, 1.0, 2.0]

    def test_stop_from_inside_callback(self):
        engine = Engine()
        ticks = []

        def callback(now: float) -> None:
            ticks.append(now)
            if len(ticks) == 2:
                process.stop()

        process = PeriodicProcess(engine, 1.0, callback, start_at=0.0)
        process.start()
        engine.run_until(10.0)
        assert ticks == [0.0, 1.0]

    def test_double_start_rejected(self):
        process = PeriodicProcess(Engine(), 1.0, lambda now: None)
        process.start()
        with pytest.raises(SchedulingError):
            process.start()

    def test_zero_interval_rejected(self):
        with pytest.raises(SchedulingError):
            PeriodicProcess(Engine(), 0.0, lambda now: None)

    def test_tick_counter(self):
        engine = Engine()
        process = PeriodicProcess(engine, 1.0, lambda now: None, start_at=0.0)
        process.start()
        engine.run_until(4.0)
        assert process.ticks == 5
