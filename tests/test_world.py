"""Unit tests for the simulation world."""

import pytest

from tests.helpers import contact, make_message, make_world, trace_of
from repro.agents.behaviors import BehaviorProfile
from repro.errors import ConfigurationError, SimulationError
from repro.messages.generator import MessageGenerator
from repro.messages.keywords import KeywordUniverse
from repro.network.node import Node
from repro.network.world import World
from repro.routing.epidemic import EpidemicRouter
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams


def _world(interests=None, **kwargs):
    interests = interests if interests is not None else {0: [], 1: ["flood"]}
    return make_world(interests, EpidemicRouter(), **kwargs)


class TestConstruction:
    def test_duplicate_node_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            World(Engine(), [Node(0, []), Node(0, [])], EpidemicRouter())

    def test_unknown_node_lookup_rejected(self):
        world = _world()
        with pytest.raises(ConfigurationError):
            world.node(99)

    def test_node_ids_sorted(self):
        world = _world({5: [], 1: [], 3: []})
        assert world.node_ids() == [1, 3, 5]

    def test_invalid_link_speed_rejected(self):
        with pytest.raises(ConfigurationError):
            World(Engine(), [Node(0, [])], EpidemicRouter(), link_speed=0.0)


class TestContacts:
    def test_contact_creates_and_destroys_link(self):
        world = _world()
        seen = {}

        def probe(now):
            seen[now] = world.link_between(0, 1) is not None

        world.engine.schedule_at(15.0, lambda: probe(15.0))
        world.engine.schedule_at(60.0, lambda: probe(60.0))
        world.load_contact_trace(trace_of(contact(10.0, 50.0, 0, 1)))
        world.run(100.0)
        assert seen == {15.0: True, 60.0: False}

    def test_active_links_tracking(self):
        world = _world({0: [], 1: [], 2: []})
        counts = []
        world.engine.schedule_at(
            15.0, lambda: counts.append(len(world.active_links(0)))
        )
        world.load_contact_trace(trace_of(
            contact(10.0, 50.0, 0, 1), contact(10.0, 50.0, 0, 2)
        ))
        world.run(100.0)
        assert counts == [2]

    def test_selfish_behavior_suppresses_contacts(self):
        never = BehaviorProfile(selfish=True, participation_probability=0.0)
        world = _world(behaviors={0: never})
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 50.0, 0, 1)))
        world.run(100.0)
        assert world.metrics.transfers_completed == 0
        assert message.uuid not in world.node(1).delivered

    def test_contact_down_without_up_is_harmless(self):
        world = _world()
        world.engine.schedule_at(5.0, lambda: world._contact_down((0, 1)))
        world.run(10.0)


class TestTransfers:
    def test_send_suppressed_for_seen_receiver(self):
        world = _world()
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        world.node(1).seen.add(message.uuid)
        world.load_contact_trace(trace_of(contact(10.0, 50.0, 0, 1)))
        world.run(100.0)
        # The router checks has_seen, so no transfer is even attempted.
        assert world.metrics.transfers_completed == 0

    def test_send_message_suppresses_duplicates_in_flight(self):
        world = _world()
        message = make_message(source=0, size=1000, keywords=("flood",))
        world.inject_message(message)
        outcomes = []

        def double_send():
            link = world.link_between(0, 1)
            # The router already queued one copy at contact start; a
            # second explicit send of the same UUID must be suppressed.
            outcomes.append(world.send_message(link, 0, message))
            assert not world.can_send(link, 0, message)

        world.engine.schedule_at(11.0, double_send)
        world.load_contact_trace(trace_of(contact(10.0, 50.0, 0, 1)))
        world.run(100.0)
        assert outcomes == [None]
        assert world.metrics.transfers_suppressed >= 1
        assert world.metrics.transfers_completed == 1

    def test_energy_charged_on_completion(self):
        world = _world()
        message = make_message(source=0, size=1000, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 50.0, 0, 1)))
        world.run(100.0)
        assert world.energy.consumed(0) > 0.0
        assert world.energy.consumed(1) > 0.0
        assert world.energy.consumed(0) > world.energy.consumed(1)

    def test_aborted_transfer_counted(self):
        world = _world()
        message = make_message(source=0, size=1000, keywords=("flood",))
        world.inject_message(message)
        world.load_contact_trace(trace_of(contact(10.0, 10.5, 0, 1)))
        world.run(100.0)
        assert world.metrics.transfers_aborted == 1
        assert world.metrics.transfers_completed == 0


class TestWorkload:
    def test_schedule_requires_generator(self):
        world = _world()
        with pytest.raises(SimulationError):
            world.schedule_workload([(1.0, 0)])

    def test_scheduled_workload_creates_messages(self):
        world = _world()
        generator = MessageGenerator(
            KeywordUniverse(30), RandomStreams(1).get("workload")
        )
        world.use_generator(generator)
        world.schedule_workload([(5.0, 0), (10.0, 1)])
        world.run(20.0)
        assert len(world.metrics.messages) == 2
        assert len(world.node(0).generated) == 1

    def test_intended_destinations_exclude_source(self):
        world = _world({0: ["flood"], 1: ["flood"], 2: []})
        message = make_message(source=0, size=100, keywords=("flood",))
        world.inject_message(message)
        record = world.metrics.record_for(message.uuid)
        assert record.intended == frozenset({1})

    def test_malicious_behavior_creates_low_quality(self):
        bad = BehaviorProfile(malicious=True, low_quality_probability=1.0)
        world = _world(behaviors={0: bad})
        generator = MessageGenerator(
            KeywordUniverse(30), RandomStreams(1).get("workload")
        )
        world.use_generator(generator)
        world.schedule_workload([(5.0, 0)])
        world.run(10.0)
        record = list(world.metrics.messages)[0]
        assert record.quality <= 0.2


class TestTtl:
    def test_expired_messages_removed(self):
        world = _world(ttl=100.0)
        message = make_message(source=0, created_at=0.0, size=100)
        world.inject_message(message)
        world.run(500.0)
        assert message.uuid not in world.node(0).buffer
        assert world.metrics.expirations == 1

    def test_fresh_messages_survive_sweep(self):
        world = _world(ttl=10_000.0)
        message = make_message(source=0, size=100)
        world.inject_message(message)
        world.run(500.0)
        assert message.uuid in world.node(0).buffer

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ConfigurationError):
            _world(ttl=0.0)

    def test_invalid_run_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            _world().run(0.0)
