"""Differential harness: legacy object world vs the SoA world core.

The struct-of-arrays core (``repro.network.world_soa``) is an
*optimisation*, not a behaviour change: stepped on identical seeds it
must produce event-for-event identical runs — same contact sequence,
same transfers, same deliveries, same token balances, same floats.
This suite is the migration contract: every scenario dimension that
exercises a different world-core code path (mobility model, scheme,
fault injection) runs under both cores and the results are compared
exactly.

Float equality here is deliberate.  The SoA core batches what the
object core did one event at a time, and batching is only safe because
it preserves the scalar accumulation order (see
``repro.network.world_state``).  Any drift — even in the last ulp —
fails these tests.
"""

import json
import re
from pathlib import Path

import pytest

from repro.experiments import ScenarioConfig, run_scenario
from repro.faults import FaultConfig

MOBILITY_MODELS = ("random-waypoint", "random-walk", "manhattan")
SCHEMES = ("incentive", "chitchat", "epidemic")

#: Light fault mix: link-layer loss plus churn, the two fault paths the
#: world core itself mediates (blackouts need batteries; see the
#: battery test below).
FAULTS = FaultConfig(loss_probability=0.05, mean_uptime=1800.0)


def _run_both(config, scheme, seed):
    """One (object, SoA) run pair on identical seeds."""
    legacy = run_scenario(
        config.replace(world_core="object"), scheme, seed=seed
    )
    soa = run_scenario(config.replace(world_core="soa"), scheme, seed=seed)
    return legacy, soa


def _normalise_uuids(lines):
    """Rewrite message uuids to first-appearance ordinals.

    Message uuids come from a process-global counter, so the second run
    in a process numbers its messages with an offset.  Order of first
    appearance is deterministic, so renumbering restores comparability
    without masking real divergence.
    """
    mapping = {}

    def sub(match):
        uuid = match.group(0)
        if uuid not in mapping:
            mapping[uuid] = f"msg-{len(mapping):08d}"
        return mapping[uuid]

    pattern = re.compile(r"msg-\d+(?:-f\d+)?")
    normalised = []
    for line in lines:
        line = pattern.sub(sub, line)
        if '"type":"engine-run"' in line or '"type":"run-end"' in line:
            # The SoA core batches per-shard movement into fewer engine
            # events; the raw event count is scheduler bookkeeping, not
            # behaviour.  Everything else in the record must still match
            # (run-end carries supply, escrow and every balance).
            line = re.sub(r'"events":\d+', '"events":0', line)
        normalised.append(line)
    return normalised


class TestDifferentialMatrix:
    """3 mobility models x 3 schemes x fault/no-fault, both cores."""

    @pytest.mark.parametrize("mobility", MOBILITY_MODELS)
    @pytest.mark.parametrize("scheme", SCHEMES)
    @pytest.mark.parametrize(
        "faults", (None, FAULTS), ids=("no-fault", "fault")
    )
    def test_summaries_bit_identical(self, mobility, scheme, faults):
        config = ScenarioConfig.tiny(mobility=mobility, faults=faults)
        legacy, soa = _run_both(config, scheme, seed=11)
        assert legacy.summary() == soa.summary()

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_ledger_balances_bit_identical(self, scheme):
        config = ScenarioConfig.tiny()
        legacy, soa = _run_both(config, scheme, seed=5)
        ledger_l = getattr(legacy.router, "ledger", None)
        ledger_s = getattr(soa.router, "ledger", None)
        if ledger_l is None:
            assert ledger_s is None
            return
        assert ledger_l.balances() == ledger_s.balances()

    def test_fault_summaries_bit_identical(self):
        config = ScenarioConfig.tiny(faults=FAULTS, max_retransmissions=2)
        legacy, soa = _run_both(config, "incentive", seed=13)
        assert legacy.fault_summary() == soa.fault_summary()
        assert legacy.summary() == soa.summary()

    def test_battery_blackouts_bit_identical(self):
        """The SoA battery override replicates the scalar drain path."""
        config = ScenarioConfig.tiny(
            battery_capacity=400.0,
            faults=FaultConfig(recharge_interval=600.0, recharge_amount=150.0),
        )
        legacy, soa = _run_both(config, "incentive", seed=17)
        assert legacy.summary() == soa.summary()


class TestDifferentialEventTrace:
    """Event-for-event equivalence on the full JSONL trace."""

    def test_traces_identical_modulo_uuid_offset(self, tmp_path):
        config = ScenarioConfig.tiny()
        path_l = tmp_path / "legacy.jsonl"
        path_s = tmp_path / "soa.jsonl"
        run_scenario(
            config.replace(world_core="object"), "incentive", seed=2,
            trace_path=str(path_l),
        )
        run_scenario(
            config.replace(world_core="soa"), "incentive", seed=2,
            trace_path=str(path_s),
        )
        lines_l = _normalise_uuids(path_l.read_text().splitlines())
        lines_s = _normalise_uuids(path_s.read_text().splitlines())
        assert lines_l == lines_s

    def test_soa_trace_passes_conservation_audit(self, tmp_path):
        from repro.trace.audit import replay_trace

        config = ScenarioConfig.tiny()
        path = tmp_path / "soa.jsonl"
        run_scenario(config, "incentive", seed=2, trace_path=str(path))
        report = replay_trace(str(path))
        assert report.ok, report


class TestFloatParity500:
    """Satellite: exact float equality at 500 nodes (paper population).

    The batched SoA path must use the same accumulation order as the
    scalar path; at 500 nodes with the full Table 5.1 physics any
    order drift shows up in the summary floats.  Short clock keeps the
    test in tier-1 budget.
    """

    def test_500_node_run_exact_float_equality(self):
        config = ScenarioConfig.paper_scale(duration=600.0, ttl=600.0)
        legacy, soa = _run_both(config, "incentive", seed=1)
        summary_l = legacy.summary()
        summary_s = soa.summary()
        assert summary_l == summary_s
        # Belt and braces: JSON round-trip (the golden-file transport)
        # must agree too.
        assert json.dumps(summary_l, sort_keys=True) == json.dumps(
            summary_s, sort_keys=True
        )
