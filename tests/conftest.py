"""Shared fixtures for the test suite (helpers live in tests/helpers.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.incentive import IncentiveParams
from repro.core.protocol import IncentiveChitChatRouter
from repro.core.reputation import RatingModel
from repro.messages.keywords import KeywordUniverse
from repro.sim.rng import RandomStreams


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic numpy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def streams() -> RandomStreams:
    """A deterministic stream family."""
    return RandomStreams(seed=42)


@pytest.fixture
def universe() -> KeywordUniverse:
    """A 30-keyword universe."""
    return KeywordUniverse(30)


@pytest.fixture
def incentive_router() -> IncentiveChitChatRouter:
    """An incentive router with deterministic (noise-free) ratings."""
    params = IncentiveParams(initial_tokens=100.0)
    return IncentiveChitChatRouter(
        params=params,
        rating_model=RatingModel(params, noise=0.0, confidence_low=1.0),
    )
