#!/usr/bin/env python3
"""Attacks on the reputation system, and what defends against them.

Three runs on the same scenario (20 % malicious population):

1. **Baseline** — malicious nodes inject irrelevant tags; the DRM
   exposes them.
2. **Collusive praise** — malicious raters give each other perfect
   ratings; the alpha-weighting of own observations limits the damage.
3. **Whitewashing** — a washed identity resets every observer's book;
   the attacker repeatedly returns to the unknown-node default rating,
   which is exactly why the default rating (what a stranger's word is
   worth) is a security parameter.

Usage::

    python examples/attacks_and_defenses.py
"""

from repro.agents.attacks import WhitewashAttack
from repro.experiments import ScenarioConfig, run_scenario
from repro.experiments.runner import (
    _build_population,
    build_contact_trace,
    make_router,
)
from repro.messages.generator import MessageGenerator
from repro.messages.keywords import KeywordUniverse
from repro.metrics.reports import format_table
from repro.network.world import World
from repro.sim.engine import Engine
from repro.sim.rng import RandomStreams

SEED = 2


def malicious_view(result):
    reputation = result.router.reputation
    observers = sorted(result.honest_ids | result.selfish_ids)
    scores = [
        reputation.average_score_of(node, observers)
        for node in sorted(result.malicious_ids)
    ]
    return sum(scores) / len(scores)


def run_with_whitewash(config, seed):
    """A manual run so the whitewash process can be armed mid-flight."""
    streams = RandomStreams(seed)
    universe = KeywordUniverse(config.keyword_pool)
    nodes, behaviors = _build_population(config, streams, universe)
    router = make_router("incentive", config, universe)
    engine = Engine()
    world = World(
        engine, nodes, router,
        link_speed=config.link_speed, streams=streams, ttl=config.ttl,
        nominal_distance=config.transmission_radius,
    )
    generator = MessageGenerator(universe, streams.get("workload"))
    world.use_generator(generator)
    world.schedule_workload(generator.schedule(
        list(range(config.n_nodes)),
        duration=config.duration, interval=config.message_interval,
    ))
    world.load_contact_trace(build_contact_trace(config, seed))

    malicious_ids = {i for i, b in behaviors.items() if b.malicious}
    observer_ids = sorted(set(range(config.n_nodes)) - malicious_ids)
    attack = WhitewashAttack(
        engine, router.reputation,
        attackers=sorted(malicious_ids), observers=observer_ids,
        wash_threshold=2.0, check_interval=config.duration / 10.0,
    )
    attack.start()
    world.run(config.duration)

    scores = [
        router.reputation.average_score_of(node, observer_ids)
        for node in sorted(malicious_ids)
    ]
    return sum(scores) / len(scores), attack.wash_count


def main() -> None:
    config = ScenarioConfig.small(malicious_fraction=0.2)
    default = config.incentive.default_rating
    print(f"Scenario: {config.n_nodes} nodes, 20% malicious, "
          f"unknown-node default rating {default}.\n")

    baseline = run_scenario(config, "incentive", seed=SEED)
    collusion = run_scenario(config, "incentive-collusion", seed=SEED)
    washed_score, wash_count = run_with_whitewash(config, SEED)

    rows = [
        ["no attack", malicious_view(baseline), "-"],
        ["collusive praise", malicious_view(collusion),
         "alpha-weighted own observations"],
        ["whitewashing", washed_score, f"{wash_count} identity washes"],
    ]
    print(format_table(
        ["attack", "avg malicious rating (honest view)", "notes"],
        rows,
        title="Average rating of malicious nodes at the end of the run",
    ))

    print(
        f"\nReading: without attacks the DRM pushes malicious nodes to "
        f"~{malicious_view(baseline):.1f}; collusive praise drags the "
        f"view up but cannot clear them; whitewashing repeatedly resets "
        f"them to the {default} default — so a generous default rating "
        f"is itself an attack surface (set it low in hostile "
        f"deployments)."
    )


if __name__ == "__main__":
    main()
