#!/usr/bin/env python3
"""Disaster-response scenario: content enrichment in action.

The paper's motivating story: responders photograph a flood scene; the
cloud annotator only recognises part of what is in the image, and
relaying responders who know more (a collapsed bridge, a blocked road)
add keyword annotations in transit, so the message reaches *more* of
the teams that need it — and the enriching relays earn extra tokens for
the tags the destinations care about.

This example drives the operator functions of Paper I Section 4
(Annotate / Subscribe / Enrich) directly through the public
:class:`repro.Operators` facade, then lets the simulation run and
reports who learned what and who got paid.

Usage::

    python examples/disaster_response.py
"""

from repro import (
    EnrichmentPolicy,
    Engine,
    IncentiveChitChatRouter,
    IncentiveParams,
    KeywordUniverse,
    Node,
    Operators,
    RandomStreams,
    RatingModel,
    World,
)
from repro.messages.message import Priority
from repro.mobility.trace import Contact, ContactTrace

TEAMS = {
    0: ("scout", []),                                   # the photographer
    1: ("medic-relay", []),                             # knows the area
    2: ("bridge-crew", ["collapsed-bridge"]),
    3: ("supply-convoy", ["road-blocked"]),
    4: ("rescue-team", ["flood"]),
}


def main() -> None:
    universe = KeywordUniverse(60)
    params = IncentiveParams(initial_tokens=50.0)
    router = IncentiveChitChatRouter(
        params=params,
        rating_model=RatingModel(params, noise=0.0, confidence_low=1.0),
        enrichment=EnrichmentPolicy(universe, honest_probability=1.0),
    )
    nodes = [
        Node(node_id, interests, buffer_capacity=50_000_000)
        for node_id, (_, interests) in sorted(TEAMS.items())
    ]
    world = World(Engine(), nodes, router, link_speed=250_000.0,
                  streams=RandomStreams(11))
    operators = Operators(router)

    # The scout photographs the scene.  Ground truth: the image shows a
    # flood, a collapsed bridge and a blocked road — but the automatic
    # annotator only tagged "flood".
    message = operators.annotate(
        0,
        content=("flood", "collapsed-bridge", "road-blocked"),
        labels=("flood",),
        size=1_200_000,
        quality=0.9,
        priority=Priority.HIGH,
    )
    print("Scout creates a HIGH-priority image message.")
    print(f"  ground truth: {sorted(message.content)}")
    print(f"  initial tags: {sorted(message.keywords)}\n")

    # Contact plan.  ChitChat only hands a message to a relay whose
    # interest strength exceeds the sender's, so the medic relay first
    # meets the rescue team and *acquires* a transient interest in
    # "flood" (the RTSR growth algorithm).  It then receives the message
    # from the scout, enriches it, and later meets the bridge crew and
    # the supply convoy — destinations that only exist because of the
    # added tags.
    world.load_contact_trace(ContactTrace([
        Contact(10.0, 200.0, 1, 4),      # medic acquires "flood" interest
        Contact(250.0, 370.0, 0, 4),     # scout -> rescue team (flood)
        Contact(450.0, 570.0, 0, 1),     # scout -> medic relay
        Contact(650.0, 770.0, 1, 2),     # relay -> bridge crew
        Contact(850.0, 970.0, 1, 3),     # relay -> supply convoy
    ]))
    world.run(1200.0)

    copy = world.node(1).buffer.get(message.uuid)
    print("After the medic relay carried the message:")
    if copy is not None:
        added = [a.keyword for a in copy.added_tags()]
        print(f"  tags added in transit by node 1: {sorted(added)}")

    print("\nDeliveries:")
    for node_id, (name, interests) in sorted(TEAMS.items()):
        node = world.node(node_id)
        if message.uuid in node.delivered:
            at = node.delivered[message.uuid]
            print(f"  {name:<14} received the message at t={at:.0f}s "
                  f"(interests: {interests})")

    print("\nToken balances (endowment 50):")
    for node_id, (name, _) in sorted(TEAMS.items()):
        if router.ledger.has_account(node_id):
            earned = router.ledger.earnings(node_id)
            sign = "+" if earned >= 0 else ""
            print(f"  {name:<14} {router.ledger.balance(node_id):6.1f} "
                  f"({sign}{earned:.1f})")

    bonus = world.metrics.bonus_deliveries()
    print(f"\nEnrichment created {bonus} deliveries that the original "
          f"tags could never have reached — the paper's content-"
          f"enrichment payoff.")


if __name__ == "__main__":
    main()
