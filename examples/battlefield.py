#!/usr/bin/env python3
"""Battlefield scenario: role hierarchies and priority dissemination.

The paper's battlefield deployment: a few sergeants (rank 1) and many
soldiers (rank 2).  The incentive formula divides by the sending user's
rank, so sergeants' messages carry larger promises; the source-set
priority orders transfers and buffer custody, so HIGH-priority traffic
survives selfish pressure better than LOW — the Figure 5.6 effect,
reported here per priority class.

Usage::

    python examples/battlefield.py [--selfish 0.4] [--seed 3]
"""

import argparse

from repro.experiments import ScenarioConfig, run_comparison
from repro.messages.message import Priority
from repro.metrics.reports import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selfish", type=float, default=0.4)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    config = ScenarioConfig.small(
        selfish_fraction=args.selfish,
        role_levels=("sergeant", "soldier"),
        role_fractions=(0.1, 0.9),
    )
    print(
        f"Battlefield: {config.n_nodes} users "
        f"(~{config.n_nodes // 10} sergeants, rank 1), "
        f"{args.selfish:.0%} selfish, workload 50/30/20 "
        f"high/medium/low priority.\n"
    )

    results = run_comparison(
        config, ["chitchat", "incentive"], seed=args.seed,
    )

    rows = []
    for priority in Priority:
        row = [f"{priority.name} (P_s={int(priority)})"]
        for scheme in ("chitchat", "incentive"):
            by_priority = results[scheme].metrics.mdr_by_priority()
            row.append(by_priority[priority])
        rows.append(row)
    print(format_table(
        ["priority class", "chitchat MDR", "incentive MDR"],
        rows,
        title="Priority-segmented MDR (Figure 5.6)",
    ))

    incentive = results["incentive"].metrics.mdr_by_priority()
    print(
        f"\nUnder the incentive scheme HIGH beats LOW by "
        f"{incentive[Priority.HIGH] - incentive[Priority.LOW]:+.3f} MDR — "
        f"bigger promises put high-priority messages at the front of "
        f"every transfer queue and keep them in every buffer."
    )

    # Sergeants' economics: their messages carry larger promises, so
    # the nodes that deliver them earn more.
    router = results["incentive"].router
    ledger = router.ledger
    volumes = ledger.volume_by_reason()
    print(f"\nToken volume by reason: "
          f"{ {k: round(v, 1) for k, v in volumes.items()} }")
    print(f"Deliveries blocked by empty wallets: "
          f"{int(results['incentive'].summary()['blocked_no_tokens'])}")


if __name__ == "__main__":
    main()
