#!/usr/bin/env python3
"""The Paper II three-device demo, scripted (ICDCS 2017, Section 5).

Devices A, B, C: A is in Bluetooth range of B, B of C, but A and C do
not overlap.  A holds messages that B and C subscribe to.  The demo
shows the token-exhaustion / re-earn cycle:

1. A -> B: B pays for messages until its tokens run out; the remaining
   messages are *blocked*.
2. B -> C: B (which kept copies as a destination-relay) serves C and
   earns tokens.
3. A -> B again: B can now afford more messages.

Usage::

    python examples/two_hop_demo.py
"""

from repro import (
    Engine,
    IncentiveChitChatRouter,
    IncentiveParams,
    Node,
    RandomStreams,
    RatingModel,
    World,
)
from repro.messages.message import Message
from repro.mobility.trace import Contact, ContactTrace

INITIAL_TOKENS = 12.0
N_MESSAGES = 12


def build_world():
    params = IncentiveParams(initial_tokens=INITIAL_TOKENS)
    router = IncentiveChitChatRouter(
        params=params,
        rating_model=RatingModel(params, noise=0.0, confidence_low=1.0),
    )
    nodes = [
        Node(0, [], buffer_capacity=50_000_000),           # A: the source
        Node(1, ["flood"], buffer_capacity=50_000_000),    # B
        Node(2, ["flood"], buffer_capacity=50_000_000),    # C
    ]
    world = World(
        Engine(), nodes, router,
        link_speed=100_000.0, streams=RandomStreams(7),
    )
    return world, router


def main() -> None:
    world, router = build_world()
    names = {0: "A", 1: "B", 2: "C"}

    messages = []
    for index in range(N_MESSAGES):
        message = Message(
            source=0, created_at=0.0, size=500_000, quality=0.8,
            content=frozenset({"flood"}), keywords=("flood",),
        )
        world.inject_message(message)
        messages.append(message)
    print(f"A holds {N_MESSAGES} messages tagged 'flood'; "
          f"B and C subscribe to 'flood'.")
    print(f"Everyone starts with {INITIAL_TOKENS:.0f} tokens.\n")

    # The contact plan: A-B, then B-C, then A-B again.  A and C never
    # share a contact (their radios do not overlap).
    world.load_contact_trace(ContactTrace([
        Contact(10.0, 400.0, 0, 1),
        Contact(500.0, 900.0, 1, 2),
        Contact(1000.0, 1400.0, 0, 1),
    ]))

    def report(stage):
        def _callback():
            balances = {
                names[i]: f"{router.balance(i):5.1f}" for i in (0, 1, 2)
            }
            delivered_b = len(world.node(1).delivered)
            delivered_c = len(world.node(2).delivered)
            print(f"{stage:<28} balances={balances}  "
                  f"B received {delivered_b:2d}  C received {delivered_c:2d}  "
                  f"blocked so far {world.metrics.blocked_no_tokens}")
        return _callback

    world.engine.schedule_at(450.0, report("after A->B (B runs dry)"))
    world.engine.schedule_at(950.0, report("after B->C (B earns)"))
    world.engine.schedule_at(1450.0, report("after A->B resumes"))
    world.run(1500.0)

    print("\nLedger transactions:")
    for transaction in router.ledger.transactions:
        print(f"  t={transaction.time:7.1f}  "
              f"{names[transaction.payer]} -> {names[transaction.payee]}  "
              f"{transaction.amount:5.2f} tokens  ({transaction.reason})")

    supply = router.ledger.total_supply()
    endowment = router.ledger.total_endowment()
    print(f"\nToken conservation: {supply:.2f} / {endowment:.2f}")
    first_batch = sum(
        1 for m in messages
        if world.node(1).delivered.get(m.uuid, float("inf")) < 500.0
    )
    total_b = sum(1 for m in messages if m.uuid in world.node(1).delivered)
    print(f"B received {first_batch} messages before running dry and "
          f"{total_b - first_batch} more after earning from C — the "
          f"exhaustion/re-earn cycle of the ICDCS demo.")


if __name__ == "__main__":
    main()
