#!/usr/bin/env python3
"""Malicious-node detection with the Distributed Reputation Model.

Reproduces the Figure 5.4 experiment at example scale: a fraction of
nodes inject irrelevant tags (chasing tag incentives) and generate
low-quality messages.  Recipients rate what they receive against the
ground truth, ratings gossip across contacts, and the average rating of
malicious nodes among honest observers falls over time — faster when
there are more malicious nodes to bump into.

Usage::

    python examples/malicious_detection.py
"""

from repro.experiments import ScenarioConfig, run_scenario
from repro.metrics.reports import format_table


def spark(value: float, ceiling: float = 5.0, width: int = 30) -> str:
    """A crude text bar for terminal output."""
    filled = int(round(value / ceiling * width))
    return "#" * filled + "." * (width - filled)


def main() -> None:
    base = ScenarioConfig.small()
    print(
        "Distributed Reputation Model: average rating of malicious nodes\n"
        "as seen by non-malicious nodes (rating scale 0-5, unknown "
        f"nodes default to {base.incentive.default_rating}).\n"
    )

    for malicious in (0.2, 0.4):
        config = base.replace(malicious_fraction=malicious)
        result = run_scenario(
            config, "incentive", seed=2,
            sample_ratings=True,
            rating_sample_interval=config.duration / 10.0,
        )
        print(f"--- {malicious:.0%} malicious nodes "
              f"({len(result.malicious_ids)} of {config.n_nodes}) ---")
        for time, ratings in result.metrics.rating_samples:
            if not ratings:
                continue
            average = sum(ratings.values()) / len(ratings)
            print(f"  t={time:6.0f}s  {average:4.2f}  {spark(average)}")

        reputation = result.router.reputation
        observers = sorted(result.honest_ids | result.selfish_ids)
        rows = []
        for group, members in (
            ("malicious", sorted(result.malicious_ids)[:5]),
            ("honest", sorted(result.honest_ids)[:5]),
        ):
            for node in members:
                rows.append([
                    group, node,
                    reputation.average_score_of(node, observers),
                ])
        print()
        print(format_table(
            ["group", "node", "avg rating among honest observers"], rows,
        ))
        print()


if __name__ == "__main__":
    main()
