#!/usr/bin/env python3
"""Quickstart: run the incentive scheme against ChitChat on one scenario.

Builds a scaled Table-5.1 scenario (60 nodes, 0.64 km2, two simulated
hours), runs both schemes over the *same* Random Waypoint contact trace
and workload, and prints the headline comparison the paper makes:
message delivery ratio, traffic, and token-economy statistics.

Usage::

    python examples/quickstart.py [--selfish 0.2] [--seed 1]
"""

import argparse

from repro.experiments import ScenarioConfig, run_comparison
from repro.metrics.reports import format_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--selfish", type=float, default=0.2,
                        help="fraction of selfish nodes (default 0.2)")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    config = ScenarioConfig.small(selfish_fraction=args.selfish)
    print(f"Scenario: {config.n_nodes} nodes, {config.area_km2:.2f} km2, "
          f"{config.duration / 3600:.1f} h, {args.selfish:.0%} selfish, "
          f"{config.incentive.initial_tokens:.0f} initial tokens\n")

    results = run_comparison(
        config, ["chitchat", "incentive"], seed=args.seed,
    )

    rows = []
    for scheme, result in results.items():
        summary = result.summary()
        rows.append([
            scheme,
            result.mdr,
            result.traffic,
            int(summary["blocked_no_tokens"]),
            int(summary["enrichment_tags"]),
            round(summary["average_delay"], 1),
        ])
    print(format_table(
        ["scheme", "MDR", "traffic", "blocked (no tokens)",
         "tags added", "avg delay (s)"],
        rows,
    ))

    chitchat = results["chitchat"]
    incentive = results["incentive"]
    reduction = 100.0 * (chitchat.traffic - incentive.traffic) / chitchat.traffic
    print(f"\nTraffic reduction over ChitChat: {reduction:.1f}% "
          f"(paper: grows with the selfish share)")

    ledger = incentive.router.ledger
    balances = ledger.balances()
    selfish_balance = [balances[i] for i in incentive.selfish_ids if i in balances]
    honest_balance = [balances[i] for i in incentive.honest_ids if i in balances]
    if selfish_balance and honest_balance:
        print(f"Mean final balance — selfish: "
              f"{sum(selfish_balance) / len(selfish_balance):.1f} tokens, "
              f"honest: {sum(honest_balance) / len(honest_balance):.1f} tokens "
              f"(endowment {config.incentive.initial_tokens:.0f})")
    print(f"Token supply conserved: {ledger.total_supply():.1f} / "
          f"{ledger.total_endowment():.1f}")


if __name__ == "__main__":
    main()
